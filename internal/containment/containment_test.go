package containment

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/relang"
	"jsonlogic/internal/schema"
)

func TestFormulaContainment(t *testing.T) {
	cases := []struct {
		name string
		phi  jsl.Formula
		psi  jsl.Formula
		want bool
	}{
		{"min-weakening", jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: 10}},
			jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: 5}}, true},
		{"min-strengthening", jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: 5}},
			jsl.And{Left: jsl.IsInt{}, Right: jsl.Min{I: 10}}, false},
		{"kind", jsl.IsStr{}, jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}}, true},
		{"kind-reverse", jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}}, jsl.IsStr{}, false},
		{"pattern", jsl.And{Left: jsl.IsStr{}, Right: jsl.Pattern{Re: relang.MustCompile("ab")}},
			jsl.And{Left: jsl.IsStr{}, Right: jsl.Pattern{Re: relang.MustCompile("a.*")}}, true},
		{"required-subset",
			jsl.And{Left: jsl.DiaWord("a", jsl.True{}), Right: jsl.DiaWord("b", jsl.True{})},
			jsl.DiaWord("a", jsl.True{}), true},
		{"required-superset",
			jsl.DiaWord("a", jsl.True{}),
			jsl.And{Left: jsl.DiaWord("a", jsl.True{}), Right: jsl.DiaWord("b", jsl.True{})}, false},
		{"unsat-left", jsl.And{Left: jsl.IsStr{}, Right: jsl.IsInt{}}, jsl.Not{Inner: jsl.True{}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Formulas(c.phi, c.psi)
			if err != nil {
				t.Fatal(err)
			}
			if res.Contained != c.want {
				t.Fatalf("Contained = %v, want %v (counterexample %v)", res.Contained, c.want, res.Counterexample)
			}
			if !res.Contained {
				// The counterexample must satisfy φ and violate ψ.
				tree := jsontree.FromValue(res.Counterexample)
				inPhi, err := jsl.Holds(tree, c.phi)
				if err != nil {
					t.Fatal(err)
				}
				inPsi, err := jsl.Holds(tree, c.psi)
				if err != nil {
					t.Fatal(err)
				}
				if !inPhi || inPsi {
					t.Fatalf("counterexample %s: inPhi=%v inPsi=%v", res.Counterexample, inPhi, inPsi)
				}
			}
		})
	}
}

func TestEquivalentFormulas(t *testing.T) {
	phi := jsl.Not{Inner: jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}}}
	psi := jsl.And{Left: jsl.Not{Inner: jsl.IsStr{}}, Right: jsl.Not{Inner: jsl.IsInt{}}}
	res, err := EquivalentFormulas(phi, psi) // De Morgan
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("De Morgan equivalence rejected, counterexample %v", res.Counterexample)
	}
	res, err = EquivalentFormulas(jsl.IsStr{}, jsl.True{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("IsStr ≡ True accepted")
	}
}

func TestSchemaContainment(t *testing.T) {
	cases := []struct {
		name string
		s1   string
		s2   string
		want bool
	}{
		{"number-range",
			`{"type":"number","minimum":10,"maximum":20}`,
			`{"type":"number","minimum":5}`,
			true},
		{"number-range-reverse",
			`{"type":"number","minimum":5}`,
			`{"type":"number","minimum":10,"maximum":20}`,
			false},
		{"required-subset",
			`{"type":"object","required":["a","b"]}`,
			`{"type":"object","required":["a"]}`,
			true},
		{"properties-narrowing",
			`{"type":"object","required":["a"],"properties":{"a":{"type":"number","multipleOf":4}}}`,
			`{"type":"object","required":["a"],"properties":{"a":{"type":"number","multipleOf":2}}}`,
			true},
		{"anyof-widening",
			`{"type":"string"}`,
			`{"anyOf":[{"type":"string"},{"type":"number"}]}`,
			true},
		{"enum",
			`{"enum":[5]}`,
			`{"type":"number","multipleOf":5}`,
			true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s1 := schema.MustParse(c.s1)
			s2 := schema.MustParse(c.s2)
			res, err := Schemas(s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Contained != c.want {
				t.Fatalf("Contained = %v, want %v (counterexample %v)", res.Contained, c.want, res.Counterexample)
			}
			if !res.Contained {
				// Counterexample validates against s1, not s2.
				ok1, err := s1.Validate(res.Counterexample)
				if err != nil {
					t.Fatal(err)
				}
				ok2, err := s2.Validate(res.Counterexample)
				if err != nil {
					t.Fatal(err)
				}
				if !ok1 || ok2 {
					t.Fatalf("counterexample %s: s1=%v s2=%v", res.Counterexample, ok1, ok2)
				}
			}
		})
	}
}

func TestRecursiveContainmentNameClash(t *testing.T) {
	// Both sides define γ; the merge must rename them apart.
	any := relang.MustCompile(".*")
	left := &jsl.Recursive{
		Defs: []jsl.Definition{{Name: "g", Body: jsl.And{
			Left:  jsl.IsObj{},
			Right: jsl.BoxRe(any, jsl.Ref{Name: "g"}),
		}}},
		Base: jsl.Ref{Name: "g"},
	}
	right := &jsl.Recursive{
		Defs: []jsl.Definition{{Name: "g", Body: jsl.Or{
			Left:  jsl.IsObj{},
			Right: jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}},
		}}},
		Base: jsl.And{Left: jsl.Ref{Name: "g"}, Right: jsl.BoxRe(any, jsl.Ref{Name: "g"})},
	}
	// left: trees of pure objects. right: nodes are objects/strings/ints
	// at the top two levels. Pure-object trees satisfy that, so left ⊑
	// right must hold.
	res, err := Recursive(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("expected containment, counterexample %v", res.Counterexample)
	}
	// And the reverse must fail (a string satisfies right, not left).
	res, err = Recursive(right, left)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("reverse containment must fail")
	}
}

// TestContainmentReflexive: every formula is contained in itself.
func TestContainmentReflexive(t *testing.T) {
	f := func(c formulaCase) bool {
		res, err := Formulas(c.f, c.f)
		if err != nil {
			return true // budget exhaustion is acceptable, not a wrong answer
		}
		return res.Contained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestContainmentConjunctionWeakening: φ∧ψ ⊑ φ.
func TestContainmentConjunctionWeakening(t *testing.T) {
	f := func(c formulaCase, d formulaCase) bool {
		res, err := Formulas(jsl.And{Left: c.f, Right: d.f}, c.f)
		if err != nil {
			return true
		}
		return res.Contained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

type formulaCase struct{ f jsl.Formula }

func (formulaCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(formulaCase{randFormula(r, 2)})
}

func randFormula(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		switch r.Intn(6) {
		case 0:
			return jsl.IsObj{}
		case 1:
			return jsl.IsStr{}
		case 2:
			return jsl.IsInt{}
		case 3:
			return jsl.Min{I: uint64(r.Intn(10))}
		case 4:
			return jsl.MinCh{K: r.Intn(3)}
		default:
			return jsl.True{}
		}
	}
	switch r.Intn(5) {
	case 0:
		return jsl.Not{Inner: randFormula(r, depth-1)}
	case 1:
		return jsl.And{Left: randFormula(r, depth-1), Right: randFormula(r, depth-1)}
	case 2:
		return jsl.Or{Left: randFormula(r, depth-1), Right: randFormula(r, depth-1)}
	case 3:
		return jsl.DiaWord([]string{"a", "b"}[r.Intn(2)], randFormula(r, depth-1))
	default:
		return jsl.BoxRe(relang.MustCompile("a|b"), randFormula(r, depth-1))
	}
}

func TestEquivalentSchemas(t *testing.T) {
	a := schema.MustParse(`{"type":"number","minimum":3,"maximum":3}`)
	b := schema.MustParse(`{"enum":[3]}`)
	res, err := EquivalentSchemas(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("min=max=3 should equal enum[3]; counterexample %v", res.Counterexample)
	}
	c := schema.MustParse(`{"type":"number","minimum":3}`)
	res, err = EquivalentSchemas(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("unequal schemas reported equivalent")
	}
	if res.Counterexample == nil {
		t.Fatal("missing counterexample")
	}
}

func TestRenameRefsIdxModalities(t *testing.T) {
	// Exercise renaming through every formula constructor, including
	// the index modalities.
	body := jsl.And{
		Left: jsl.DiamondIdx{Lo: 0, Hi: 1, Inner: jsl.Ref{Name: "g"}},
		Right: jsl.Or{
			Left:  jsl.BoxIdx{Lo: 0, Hi: jsl.Inf, Inner: jsl.Ref{Name: "g"}},
			Right: jsl.Not{Inner: jsl.DiaWord("k", jsl.Ref{Name: "g"})},
		},
	}
	renamed := renameRefs(body, map[string]string{"g": "g'"})
	var count func(f jsl.Formula, name string) int
	count = func(f jsl.Formula, name string) int {
		switch t := f.(type) {
		case jsl.Ref:
			if t.Name == name {
				return 1
			}
			return 0
		case jsl.Not:
			return count(t.Inner, name)
		case jsl.And:
			return count(t.Left, name) + count(t.Right, name)
		case jsl.Or:
			return count(t.Left, name) + count(t.Right, name)
		case jsl.DiamondKey:
			return count(t.Inner, name)
		case jsl.BoxKey:
			return count(t.Inner, name)
		case jsl.DiamondIdx:
			return count(t.Inner, name)
		case jsl.BoxIdx:
			return count(t.Inner, name)
		default:
			return 0
		}
	}
	if got := count(renamed, "g'"); got != 3 {
		t.Fatalf("renamed %d refs, want 3", got)
	}
	if got := count(renamed, "g"); got != 0 {
		t.Fatalf("%d refs left unrenamed", got)
	}
}

func TestContainmentBudgetPropagates(t *testing.T) {
	// A formula pair engineered to exhaust the default budget is not
	// easy to build reliably; instead check that error-free runs give a
	// verdict and that the API surfaces errors rather than verdicts for
	// ill-formed recursive inputs.
	bad := &jsl.Recursive{
		Defs: []jsl.Definition{{Name: "g", Body: jsl.Not{Inner: jsl.Ref{Name: "g"}}}},
		Base: jsl.Ref{Name: "g"},
	}
	if _, err := Recursive(bad, jsl.NonRecursive(jsl.True{})); err == nil {
		t.Fatal("ill-formed recursion must error")
	}
}
