// Package containment decides containment and equivalence of JSL
// formulas and JSON Schemas — the static-analysis tasks the paper's
// satisfiability results (Propositions 7 and 10) exist to enable,
// e.g. checking that a revised API schema only widens the set of
// accepted documents.
//
// Containment reduces to satisfiability in the classical way:
// φ ⊑ ψ (every document satisfying φ satisfies ψ) iff φ ∧ ¬ψ is
// unsatisfiable. The witness of a failed containment is a counter-
// example document satisfying φ but not ψ. The same complexity
// caveats as for satisfiability apply: the search is capped, and an
// exhausted budget surfaces as jauto.ErrBudget rather than a guess.
package containment

import (
	"fmt"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/schema"
)

// Result reports one containment check.
type Result struct {
	// Contained is true when every document of the left formula
	// satisfies the right one.
	Contained bool
	// Counterexample is a document satisfying the left but not the
	// right formula; nil when Contained.
	Counterexample *jsonval.Value
}

// Formulas decides φ ⊑ ψ for non-recursive JSL formulas.
func Formulas(phi, psi jsl.Formula) (Result, error) {
	return FormulasCaps(phi, psi, jauto.DefaultCaps())
}

// FormulasCaps is Formulas under explicit search bounds — for callers
// with a latency budget, like the engine's plan-cache dedup scan. An
// exhausted budget is jauto.ErrBudget, never a guess.
func FormulasCaps(phi, psi jsl.Formula, c jauto.Caps) (Result, error) {
	w, sat, err := jauto.SatisfiableJSLFormulaCaps(jsl.And{Left: phi, Right: jsl.Not{Inner: psi}}, c)
	if err != nil {
		return Result{}, err
	}
	if sat {
		return Result{Contained: false, Counterexample: w}, nil
	}
	return Result{Contained: true}, nil
}

// EquivalentFormulas decides φ ≡ ψ; the counterexample (if any)
// satisfies exactly one of the two.
func EquivalentFormulas(phi, psi jsl.Formula) (Result, error) {
	lr, err := Formulas(phi, psi)
	if err != nil || !lr.Contained {
		return lr, err
	}
	return Formulas(psi, phi)
}

// Schemas decides containment of two JSON Schemas via their Theorem 1
// translations. Recursive schemas (definitions/$ref) are supported
// through the recursive-JSL automaton of Proposition 10.
func Schemas(s1, s2 *schema.Schema) (Result, error) {
	r1, err := s1.ToJSL()
	if err != nil {
		return Result{}, fmt.Errorf("containment: left schema: %w", err)
	}
	r2, err := s2.ToJSL()
	if err != nil {
		return Result{}, fmt.Errorf("containment: right schema: %w", err)
	}
	return Recursive(r1, r2)
}

// EquivalentSchemas decides equivalence of two JSON Schemas.
func EquivalentSchemas(s1, s2 *schema.Schema) (Result, error) {
	lr, err := Schemas(s1, s2)
	if err != nil || !lr.Contained {
		return lr, err
	}
	return Schemas(s2, s1)
}

// Recursive decides ∆1 ⊑ ∆2 for recursive JSL expressions by merging
// the definition environments (renaming the right side apart) and
// testing ∆1 ∧ ¬∆2.
func Recursive(d1, d2 *jsl.Recursive) (Result, error) {
	return RecursiveCaps(d1, d2, jauto.DefaultCaps())
}

// RecursiveCaps is Recursive under explicit search bounds; see
// FormulasCaps.
func RecursiveCaps(d1, d2 *jsl.Recursive, c jauto.Caps) (Result, error) {
	merged, phi, psi, err := merge(d1, d2)
	if err != nil {
		return Result{}, err
	}
	test := &jsl.Recursive{
		Defs: merged,
		Base: jsl.And{Left: phi, Right: jsl.Not{Inner: psi}},
	}
	w, sat, err := jauto.SatisfiableJSLCaps(test, c)
	if err != nil {
		return Result{}, err
	}
	if sat {
		return Result{Contained: false, Counterexample: w}, nil
	}
	return Result{Contained: true}, nil
}

// ConjunctionSatisfiable decides satisfiability of ∆1 ∧ ∆2 over the
// merged definition environments — the primitive behind schema-aware
// query analysis (is any schema-conforming document able to match this
// query?). The witness, when satisfiable, conforms to both sides.
func ConjunctionSatisfiable(d1, d2 *jsl.Recursive, c jauto.Caps) (*jsonval.Value, bool, error) {
	merged, phi, psi, err := merge(d1, d2)
	if err != nil {
		return nil, false, err
	}
	test := &jsl.Recursive{
		Defs: merged,
		Base: jsl.And{Left: phi, Right: psi},
	}
	return jauto.SatisfiableJSLCaps(test, c)
}

// merge renames d2's definitions apart from d1's and returns the
// union environment together with both base expressions.
func merge(d1, d2 *jsl.Recursive) ([]jsl.Definition, jsl.Formula, jsl.Formula, error) {
	taken := map[string]bool{}
	for _, d := range d1.Defs {
		if taken[d.Name] {
			return nil, nil, nil, fmt.Errorf("containment: duplicate definition %q", d.Name)
		}
		taken[d.Name] = true
	}
	rename := map[string]string{}
	for _, d := range d2.Defs {
		name := d.Name
		for taken[name] {
			name += "'"
		}
		rename[d.Name] = name
		taken[name] = true
	}
	merged := append([]jsl.Definition{}, d1.Defs...)
	for _, d := range d2.Defs {
		merged = append(merged, jsl.Definition{Name: rename[d.Name], Body: renameRefs(d.Body, rename)})
	}
	return merged, d1.Base, renameRefs(d2.Base, rename), nil
}

// renameRefs rewrites Ref names according to the map.
func renameRefs(f jsl.Formula, m map[string]string) jsl.Formula {
	switch t := f.(type) {
	case jsl.Not:
		return jsl.Not{Inner: renameRefs(t.Inner, m)}
	case jsl.And:
		return jsl.And{Left: renameRefs(t.Left, m), Right: renameRefs(t.Right, m)}
	case jsl.Or:
		return jsl.Or{Left: renameRefs(t.Left, m), Right: renameRefs(t.Right, m)}
	case jsl.DiamondKey:
		t.Inner = renameRefs(t.Inner, m)
		return t
	case jsl.BoxKey:
		t.Inner = renameRefs(t.Inner, m)
		return t
	case jsl.DiamondIdx:
		t.Inner = renameRefs(t.Inner, m)
		return t
	case jsl.BoxIdx:
		t.Inner = renameRefs(t.Inner, m)
		return t
	case jsl.Ref:
		if to, ok := m[t.Name]; ok {
			return jsl.Ref{Name: to}
		}
		return t
	default:
		return f
	}
}
