package containment_test

// Runnable godoc examples for the containment procedures — the
// public-facing surface the semantic planner is built on. `go test
// ./internal/containment/` executes these, so the documentation
// cannot rot.

import (
	"fmt"

	"jsonlogic/internal/containment"
	"jsonlogic/internal/jsl"
)

// Decide φ ⊑ ψ for two JSL formulas: "a number of at least 10" is
// contained in "a number of at least 5", and a refuted containment
// hands back a concrete separating document.
func ExampleFormulas() {
	atLeast10 := jsl.MustParse(`number && min(10)`)
	atLeast5 := jsl.MustParse(`number && min(5)`)

	res, err := containment.Formulas(atLeast10, atLeast5)
	if err != nil {
		panic(err)
	}
	fmt.Println("min(10) ⊑ min(5):", res.Contained)

	res, err = containment.Formulas(atLeast5, atLeast10)
	if err != nil {
		panic(err)
	}
	fmt.Println("min(5) ⊑ min(10):", res.Contained)
	fmt.Println("counterexample:", res.Counterexample)
	// Output:
	// min(10) ⊑ min(5): true
	// min(5) ⊑ min(10): false
	// counterexample: 5
}
