package metrics

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// HTTPMetrics records per-endpoint request counts (by status code)
// and latency distributions. Endpoints are registered by Instrument
// at mux-construction time; recording afterwards is lock-free on the
// latency path (the power-of-two Histogram) and takes one short
// mutex on the status-code map.
type HTTPMetrics struct {
	mu        sync.Mutex
	endpoints []*endpointMetrics
}

type endpointMetrics struct {
	name    string
	latency Histogram // request duration in microseconds

	mu    sync.Mutex
	codes map[int]uint64
}

// Instrument registers endpoint and wraps h to record its status code
// and wall-clock latency. The endpoint name labels the samples in
// Expose; use one stable name per route ("put_doc", not the path with
// its IDs), or cardinality eats the scrape.
func (m *HTTPMetrics) Instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	ep := &endpointMetrics{name: endpoint, codes: make(map[int]uint64)}
	m.mu.Lock()
	m.endpoints = append(m.endpoints, ep)
	m.mu.Unlock()
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		ep.latency.Observe(int(time.Since(start).Microseconds()))
		code := sw.code
		if code == 0 {
			// Nothing written: net/http sends 200 on return.
			code = http.StatusOK
		}
		ep.mu.Lock()
		ep.codes[code]++
		ep.mu.Unlock()
	}
}

// Expose appends the HTTP families to e: <prefix>http_requests_total
// {endpoint,code} and <prefix>http_request_duration_seconds{endpoint}
// histograms (microsecond observations scaled to seconds).
func (m *HTTPMetrics) Expose(e *Exposition, prefix string) {
	m.mu.Lock()
	endpoints := append([]*endpointMetrics(nil), m.endpoints...)
	m.mu.Unlock()
	for _, ep := range endpoints {
		ep.mu.Lock()
		codes := make([]int, 0, len(ep.codes))
		for c := range ep.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		counts := make([]uint64, len(codes))
		for i, c := range codes {
			counts[i] = ep.codes[c]
		}
		ep.mu.Unlock()
		for i, c := range codes {
			e.Counter(prefix+"http_requests_total", "HTTP requests served, by endpoint and status code.",
				counts[i],
				Label{Name: "endpoint", Value: ep.name},
				Label{Name: "code", Value: strconv.Itoa(c)})
		}
	}
	for _, ep := range endpoints {
		e.Histogram(prefix+"http_request_duration_seconds", "HTTP request latency, by endpoint.",
			&ep.latency, 1e6, Label{Name: "endpoint", Value: ep.name})
	}
}

// Latency returns the live latency histogram of the named endpoint,
// or nil — the hook the middleware unit tests and /stats-style JSON
// reporting read through.
func (m *HTTPMetrics) Latency(endpoint string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ep := range m.endpoints {
		if ep.name == endpoint {
			return &ep.latency
		}
	}
	return nil
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}
