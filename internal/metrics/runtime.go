package metrics

import (
	"runtime"
	"sync"
)

// RuntimeMetrics exposes the Go runtime's health as Prometheus
// families: goroutine count, heap bytes, GC cycles and a GC pause
// histogram. Pauses are delta-fed at scrape time from MemStats'
// circular PauseNs log — each scrape observes only the cycles since
// the previous one, so the histogram accumulates every pause exactly
// once (up to the log's 256-entry depth between scrapes).
type RuntimeMetrics struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauses    Histogram // pause durations in microseconds
}

// Expose reads the runtime state and appends the <prefix>go_* families
// to e.
func (m *RuntimeMetrics) Expose(e *Exposition, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	m.mu.Lock()
	from := m.lastNumGC
	if ms.NumGC-from > uint32(len(ms.PauseNs)) {
		// More cycles than the log holds: the older pauses are gone.
		from = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for gc := from + 1; gc <= ms.NumGC; gc++ {
		pause := ms.PauseNs[(gc+255)%256]
		m.pauses.Observe(int(pause / 1e3))
	}
	m.lastNumGC = ms.NumGC
	m.mu.Unlock()

	e.Gauge(prefix+"go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	e.Gauge(prefix+"go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	e.Gauge(prefix+"go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	e.Counter(prefix+"go_gc_total", "Completed GC cycles.", uint64(ms.NumGC))
	e.Histogram(prefix+"go_gc_pause_seconds", "GC stop-the-world pause durations.", &m.pauses, 1e6)
}
