package metrics

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexAndBounds(t *testing.T) {
	cases := []struct {
		n, bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<26 - 1, 26}, {1 << 26, NumBuckets - 1}, {1 << 30, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.n); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.n, got, c.bucket)
		}
	}
	// Every bucket's bound admits exactly the values the index maps to
	// it: bucketIndex(bound) == i and bucketIndex(bound+1) == i+1.
	for i := 0; i < NumBuckets-1; i++ {
		bound := BucketBound(i)
		if got := bucketIndex(int(bound)); got != i {
			t.Errorf("bucketIndex(BucketBound(%d)=%d) = %d", i, bound, got)
		}
		if got := bucketIndex(int(bound) + 1); got != i+1 {
			t.Errorf("bucketIndex(BucketBound(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
	if BucketBound(NumBuckets-1) != -1 {
		t.Errorf("overflow bucket must have no bound")
	}
}

func TestHistogramCumulativeAndSum(t *testing.T) {
	var h Histogram
	values := []int{0, 1, 1, 3, 100, 5000, 1 << 27}
	sum := 0
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(values)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(values))
	}
	if h.Sum() != uint64(sum) {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	cum := h.Cumulative()
	prev := uint64(0)
	for i, c := range cum {
		if c < prev {
			t.Fatalf("cumulative counts not monotone at bucket %d: %d < %d", i, c, prev)
		}
		prev = c
	}
	if cum[NumBuckets-1] != uint64(len(values)) {
		t.Fatalf("final cumulative = %d, want %d", cum[NumBuckets-1], len(values))
	}
	// Model check against a brute-force count.
	for i := 0; i < NumBuckets-1; i++ {
		want := uint64(0)
		for _, v := range values {
			if int64(v) <= BucketBound(i) {
				want++
			}
		}
		if cum[i] != want {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], want)
		}
	}
}

func TestHistogramSnapshotLabels(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1 << 30)
	snap := h.Snapshot()
	want := []Bucket{
		{Range: "0", Count: 1},
		{Range: "1", Count: 1},
		{Range: "2-3", Count: 2},
		{Range: fmt.Sprintf("%d+", 1<<(NumBuckets-2)), Count: 1},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, snap[i], want[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(r.Intn(1 << 22))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestExpositionFormat(t *testing.T) {
	var e Exposition
	e.Counter("x_total", "a counter", 3)
	e.Counter("x_total", "a counter", 4, Label{Name: "op", Value: "put"})
	e.Gauge("g", `a "gauge" with
newline help`, 1.5, Label{Name: "v", Value: "a\\b\"c\nd"})
	var h Histogram
	h.Observe(0)
	h.Observe(2)
	h.Observe(10)
	e.Histogram("lat_seconds", "latency", &h, 1e6, Label{Name: "endpoint", Value: "get"})
	out := e.String()

	for _, want := range []string{
		"# HELP x_total a counter\n# TYPE x_total counter\nx_total 3\n" + `x_total{op="put"} 4` + "\n",
		`# HELP g a "gauge" with\nnewline help` + "\n# TYPE g gauge\n" + `g{v="a\\b\"c\nd"} 1.5` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{endpoint="get",le="0"} 1` + "\n",
		`lat_seconds_bucket{endpoint="get",le="3e-06"} 2` + "\n",
		`lat_seconds_bucket{endpoint="get",le="1.5e-05"} 3` + "\n",
		`lat_seconds_bucket{endpoint="get",le="+Inf"} 3` + "\n",
		`lat_seconds_sum{endpoint="get"} 1.2e-05` + "\n",
		`lat_seconds_count{endpoint="get"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per family, even with several samples.
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

// TestMiddlewareLatencyHistogram pins the middleware unit contract:
// every request lands exactly one latency observation and one status
// count on its own endpoint, with the measured duration at least the
// handler's sleep.
func TestMiddlewareLatencyHistogram(t *testing.T) {
	var m HTTPMetrics
	slow := m.Instrument("slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
		w.WriteHeader(http.StatusTeapot)
	})
	fast := m.Instrument("fast", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok") // implicit 200 via Write
	})
	none := m.Instrument("none", func(w http.ResponseWriter, r *http.Request) {
		// Neither Write nor WriteHeader: net/http sends 200.
	})

	for i := 0; i < 3; i++ {
		slow(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	}
	fast(httptest.NewRecorder(), httptest.NewRequest("GET", "/fast", nil))
	none(httptest.NewRecorder(), httptest.NewRequest("GET", "/none", nil))

	lat := m.Latency("slow")
	if lat == nil || lat.Count() != 3 {
		t.Fatalf("slow latency count = %v", lat)
	}
	// 3 requests × ≥5ms each: the sum is at least 15000µs.
	if lat.Sum() < 15000 {
		t.Fatalf("slow latency sum = %dµs, want ≥ 15000", lat.Sum())
	}
	if got := m.Latency("fast").Count(); got != 1 {
		t.Fatalf("fast latency count = %d", got)
	}
	if m.Latency("nope") != nil {
		t.Fatal("unknown endpoint must return nil")
	}

	var e Exposition
	m.Expose(&e, "test_")
	out := e.String()
	for _, want := range []string{
		`test_http_requests_total{endpoint="slow",code="418"} 3`,
		`test_http_requests_total{endpoint="fast",code="200"} 1`,
		`test_http_requests_total{endpoint="none",code="200"} 1`,
		`test_http_request_duration_seconds_count{endpoint="slow"} 3`,
		`test_http_request_duration_seconds_bucket{endpoint="fast",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
