package metrics

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format,
// version 0.0.4 — the format every Prometheus-compatible scraper
// accepts.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Exposition accumulates one scrape's worth of metric families in
// Prometheus text exposition format. Samples of one family must be
// added contiguously (the format requires it); the # HELP / # TYPE
// header is emitted once, on the family's first sample. The zero
// value is ready to use. An Exposition is built and discarded per
// scrape and is not safe for concurrent use.
type Exposition struct {
	buf    bytes.Buffer
	headed map[string]bool
}

// Counter adds one sample of a counter family.
func (e *Exposition) Counter(name, help string, v uint64, labels ...Label) {
	e.head(name, help, "counter")
	e.sample(name, "", labels, strconv.FormatUint(v, 10))
}

// Gauge adds one sample of a gauge family.
func (e *Exposition) Gauge(name, help string, v float64, labels ...Label) {
	e.head(name, help, "gauge")
	e.sample(name, "", labels, formatFloat(v))
}

// Histogram adds one sample set (buckets, sum, count) of a histogram
// family from h. Observed values are divided by unit on the way out:
// a histogram observing microseconds exposes seconds with unit = 1e6,
// a pure-count histogram (candidates per query) uses unit = 1.
// Division (not multiplication by 1/unit) keeps the le bounds
// correctly rounded, so 16383µs exposes as 0.016383, not
// 0.016382999999999998.
func (e *Exposition) Histogram(name, help string, h *Histogram, unit float64, labels ...Label) {
	e.head(name, help, "histogram")
	cum := h.Cumulative()
	le := append(append([]Label(nil), labels...), Label{})
	for i := 0; i < NumBuckets-1; i++ {
		le[len(le)-1] = Label{Name: "le", Value: formatFloat(float64(BucketBound(i)) / unit)}
		e.sample(name, "_bucket", le, strconv.FormatUint(cum[i], 10))
	}
	count := cum[NumBuckets-1]
	le[len(le)-1] = Label{Name: "le", Value: "+Inf"}
	e.sample(name, "_bucket", le, strconv.FormatUint(count, 10))
	e.sample(name, "_sum", labels, formatFloat(float64(h.Sum())/unit))
	e.sample(name, "_count", labels, strconv.FormatUint(count, 10))
}

// WriteTo writes the accumulated exposition.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf.Bytes())
	return int64(n), err
}

// String returns the accumulated exposition, for tests.
func (e *Exposition) String() string { return e.buf.String() }

func (e *Exposition) head(name, help, typ string) {
	if e.headed[name] {
		return
	}
	if e.headed == nil {
		e.headed = make(map[string]bool)
	}
	e.headed[name] = true
	fmt.Fprintf(&e.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.buf, "# TYPE %s %s\n", name, typ)
}

func (e *Exposition) sample(name, suffix string, labels []Label, value string) {
	e.buf.WriteString(name)
	e.buf.WriteString(suffix)
	if len(labels) > 0 {
		e.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			e.buf.WriteString(l.Name)
			e.buf.WriteString(`="`)
			e.buf.WriteString(escapeLabel(l.Value))
			e.buf.WriteByte('"')
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(value)
	e.buf.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string (backslash and newline only; the
// format leaves quotes alone in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
