// Package metrics provides the daemon's observability primitives: a
// lock-free power-of-two histogram shared with the store's query
// accounting, a Prometheus text-exposition writer (version 0.0.4 of
// the format, the one every scraper speaks), and an HTTP middleware
// recording per-endpoint request counts and latency distributions.
//
// The histogram began life inside internal/store as the
// candidates-per-query counter; it lives here now so the store, the
// HTTP layer and any future subsystem share one implementation and
// one exposition path. Buckets are powers of two: crude, but
// branch-free to update, zero-value ready (no constructor, safe to
// embed), and exactly what a load-test harness needs to tell a 100µs
// p50 from a 10ms p99.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// NumBuckets is the bucket count of every Histogram: bucket 0 holds
// exact zeros, bucket i ≥ 1 holds [2^(i-1), 2^i); the last bucket
// absorbs everything ≥ 2^(NumBuckets-2). 28 buckets reach ~67M — for
// microsecond latencies that is a minute, for candidate counts 67M
// documents — before the overflow bucket engages.
const NumBuckets = 28

// Histogram counts observations in power-of-two buckets. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one observation of value n (negative values count
// as zero).
func (h *Histogram) Observe(n int) {
	if n < 0 {
		n = 0
	}
	h.buckets[bucketIndex(n)].Add(1)
	h.sum.Add(uint64(n))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var c uint64
	for i := range h.buckets {
		c += h.buckets[i].Load()
	}
	return c
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// bucketIndex maps a value to its bucket.
func bucketIndex(n int) int {
	if n <= 0 {
		return 0
	}
	b := 1
	for n > 1 && b < NumBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (the
// largest value the bucket admits), or -1 for the overflow bucket.
// Bucket 0 admits only 0; bucket i ≥ 1 admits [2^(i-1), 2^i), so its
// bound is 2^i - 1.
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return -1
	default:
		return int64(1)<<i - 1
	}
}

// Bucket is one non-empty bucket of a histogram snapshot, labelled
// with its value range — the store's /stats JSON shape.
type Bucket struct {
	Range string `json:"range"`
	Count uint64 `json:"count"`
}

// Snapshot renders the non-empty buckets in ascending range order.
func (h *Histogram) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < NumBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		out = append(out, Bucket{Range: bucketLabel(i), Count: c})
	}
	return out
}

// Cumulative returns the cumulative count of observations in buckets
// 0..i — the "≤ BucketBound(i)" count Prometheus histogram samples
// are built from. Concurrent Observe calls may land between bucket
// loads; each bucket's count is itself consistent, so cumulative
// counts remain monotone in i for any one call.
func (h *Histogram) Cumulative() [NumBuckets]uint64 {
	var cum [NumBuckets]uint64
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum
}

func bucketLabel(i int) string {
	switch {
	case i == 0:
		return "0"
	case i == 1:
		return "1"
	case i == NumBuckets-1:
		return fmt.Sprintf("%d+", 1<<(NumBuckets-2))
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}
