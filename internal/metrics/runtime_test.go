package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsExpose(t *testing.T) {
	var m RuntimeMetrics
	runtime.GC() // ensure at least one cycle is in the pause log
	var e Exposition
	m.Expose(&e, "x_")
	out := e.String()
	for _, family := range []string{
		"x_go_goroutines",
		"x_go_heap_alloc_bytes",
		"x_go_heap_sys_bytes",
		"x_go_gc_total",
		"x_go_gc_pause_seconds_bucket",
		"x_go_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("exposition missing %s:\n%s", family, out)
		}
	}
	if m.pauses.Count() == 0 {
		t.Fatal("no GC pauses observed after an explicit runtime.GC()")
	}
	// A second scrape must not re-observe the same cycles.
	count := m.pauses.Count()
	var e2 Exposition
	m.Expose(&e2, "x_")
	if got := m.pauses.Count(); got != count {
		t.Fatalf("re-scrape re-observed pauses: %d -> %d", count, got)
	}
}
