package trace

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize bounds the slow-query ring when Options.RingSize is
// zero.
const DefaultRingSize = 64

// Options configure a Tracer.
//
// Note the SlowQuery zero value: constructing a Tracer with a zero
// threshold means "every query is slow" (the loadtest-smoke and e2e
// configurations). Callers that want a Tracer with slow detection off
// — sampling only, or fully disabled — must set SlowQuery negative.
// Not constructing a Tracer at all (nil) disables tracing outright.
type Options struct {
	// SampleEvery arms a trace for 1 in N queries; 0 (or negative)
	// disables sampling.
	SampleEvery int
	// SlowQuery is the slow-query threshold: a traced query whose total
	// wall time reaches it is kept as "slow", logged, and pushed onto
	// the ring. 0 keeps every query; negative disables slow detection.
	SlowQuery time.Duration
	// RingSize bounds the kept-trace ring (default DefaultRingSize).
	RingSize int
	// Logger, when set, receives one Warn record per slow query.
	Logger *slog.Logger
}

// Stats is a snapshot of a Tracer's counters, for /metrics.
type Stats struct {
	// Started counts armed traces (sampler fired or slow detection on).
	Started uint64
	// Sampled counts traces the 1-in-N sampler selected.
	Sampled uint64
	// Slow counts queries at or over the slow threshold.
	Slow uint64
	// Dropped counts armed traces discarded at Finish (neither slow nor
	// sampled).
	Dropped uint64
	// RingEntries is the number of snapshots currently held.
	RingEntries int
}

// Tracer arms, pools and collects per-query Traces. A nil *Tracer is
// valid and permanently disabled: Start returns nil (an untraced
// query) and Finish is a no-op — so holders need no nil checks of
// their own.
type Tracer struct {
	opts Options
	pool sync.Pool
	ring *ring

	reqs    atomic.Uint64 // all queries, for the 1-in-N sampler
	started atomic.Uint64
	sampled atomic.Uint64
	slow    atomic.Uint64
	dropped atomic.Uint64
}

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	t := &Tracer{opts: opts, ring: newRing(opts.RingSize)}
	t.pool.New = func() any { return new(Trace) }
	return t
}

// Enabled reports whether any query can be traced at all.
func (tc *Tracer) Enabled() bool {
	return tc != nil && (tc.opts.SampleEvery > 0 || tc.opts.SlowQuery >= 0)
}

// Start arms a recorder for one query, or returns nil when this query
// is not traced — the nil flows through the whole read path as "do
// nothing". The recorder comes from a pool; Finish returns it.
func (tc *Tracer) Start() *Trace {
	if tc == nil {
		return nil
	}
	slowOn := tc.opts.SlowQuery >= 0
	sampledNow := false
	if tc.opts.SampleEvery > 0 {
		sampledNow = tc.reqs.Add(1)%uint64(tc.opts.SampleEvery) == 0
	}
	if !slowOn && !sampledNow {
		return nil
	}
	tc.started.Add(1)
	if sampledNow {
		tc.sampled.Add(1)
	}
	tr := tc.pool.Get().(*Trace)
	tr.reset("request")
	tr.sampled = sampledNow
	return tr
}

// Finish completes the trace: if the query was slow (or the sampler
// selected it) the trace is materialized onto the ring — and, for slow
// queries, logged — otherwise it is dropped. The recorder returns to
// the pool either way; the caller must not touch tr afterwards.
// Finish reports why the trace was kept ("slow", "sample") or ""
// when it was dropped or tr was nil.
func (tc *Tracer) Finish(tr *Trace) string {
	if tc == nil || tr == nil {
		return ""
	}
	dur := time.Since(tr.start)
	trigger := ""
	switch {
	case tc.opts.SlowQuery >= 0 && dur >= tc.opts.SlowQuery:
		trigger = "slow"
	case tr.sampled:
		trigger = "sample"
	}
	if trigger == "" {
		tc.dropped.Add(1)
		tc.pool.Put(tr)
		return ""
	}
	snap := tr.snapshot(trigger, dur)
	tc.pool.Put(tr)
	tc.ring.push(snap) // assigns snap.ID
	if trigger == "slow" {
		tc.slow.Add(1)
		tc.logSlow(snap)
	}
	return trigger
}

// logSlow emits one structured record per slow query: the query, its
// join keys (trace id, request id) and the per-stage totals, so an
// outlier is attributable from the log alone.
func (tc *Tracer) logSlow(snap *Snapshot) {
	if tc.opts.Logger == nil {
		return
	}
	stages := snap.StageNS()
	tc.opts.Logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
		slog.Uint64("trace_id", snap.ID),
		slog.String("request_id", snap.RequestID),
		slog.String("lang", snap.Lang),
		slog.String("mode", snap.Mode),
		slog.String("query", snap.Query),
		slog.Duration("duration", time.Duration(snap.DurationNS)),
		slog.Duration("compile", time.Duration(stages["compile"])),
		slog.Duration("plan", time.Duration(stages["plan"])),
		slog.Duration("probe", time.Duration(stages["probe"])),
		slog.Duration("eval", time.Duration(stages["eval"])),
		slog.Duration("merge", time.Duration(stages["merge"])),
	)
}

// Snapshots returns the kept traces, newest first.
func (tc *Tracer) Snapshots() []*Snapshot {
	if tc == nil {
		return nil
	}
	return tc.ring.snapshots()
}

// Stats returns a snapshot of the tracer's counters.
func (tc *Tracer) Stats() Stats {
	if tc == nil {
		return Stats{}
	}
	return Stats{
		Started:     tc.started.Load(),
		Sampled:     tc.sampled.Load(),
		Slow:        tc.slow.Load(),
		Dropped:     tc.dropped.Load(),
		RingEntries: tc.ring.len(),
	}
}
