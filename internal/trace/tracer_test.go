package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"
)

// TestSampledCapture: with slow detection off, only every Nth query is
// armed, and every armed trace lands on the ring with trigger
// "sample".
func TestSampledCapture(t *testing.T) {
	tc := New(Options{SampleEvery: 4, SlowQuery: -1})
	kept := 0
	for i := 0; i < 20; i++ {
		tr := tc.Start()
		if tr == nil {
			continue
		}
		tr.End(tr.Start(tr.Root(), "plan"))
		if trig := tc.Finish(tr); trig != "sample" {
			t.Fatalf("trigger = %q, want sample", trig)
		}
		kept++
	}
	if kept != 5 {
		t.Fatalf("armed %d of 20 queries with SampleEvery=4, want 5", kept)
	}
	st := tc.Stats()
	if st.Started != 5 || st.Sampled != 5 || st.Slow != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, snap := range tc.Snapshots() {
		if snap.Trigger != "sample" {
			t.Fatalf("ring entry trigger = %q", snap.Trigger)
		}
	}
}

// TestSlowTriggeredCapture: with a threshold, every query is armed
// retroactively but only those at or over the threshold are kept —
// the rest are dropped — and slow queries are logged through slog.
func TestSlowTriggeredCapture(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	tc := New(Options{SlowQuery: 5 * time.Millisecond, Logger: logger})

	// Fast query: armed (slow detection is on) but dropped at Finish.
	tr := tc.Start()
	if tr == nil {
		t.Fatal("slow detection on but query not armed")
	}
	if trig := tc.Finish(tr); trig != "" {
		t.Fatalf("fast query trigger = %q, want dropped", trig)
	}

	// Slow query: kept, ringed, logged.
	tr = tc.Start()
	tr.SetQuery("mongo", `{"a":1}`, "find")
	tr.SetRequestID("req-7")
	sp := tr.Start(tr.Root(), "eval")
	time.Sleep(6 * time.Millisecond)
	tr.End(sp)
	if trig := tc.Finish(tr); trig != "slow" {
		t.Fatalf("slow query trigger = %q, want slow", trig)
	}

	st := tc.Stats()
	if st.Started != 2 || st.Slow != 1 || st.Dropped != 1 || st.RingEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	snaps := tc.Snapshots()
	if len(snaps) != 1 || snaps[0].Trigger != "slow" || snaps[0].RequestID != "req-7" {
		t.Fatalf("ring = %+v", snaps)
	}
	var rec map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("slow log is not one JSON record: %v (%q)", err, logBuf.String())
	}
	if rec["msg"] != "slow query" || rec["request_id"] != "req-7" || rec["lang"] != "mongo" {
		t.Fatalf("slow log record = %v", rec)
	}
}

// TestZeroThresholdTracesEverything pins the loadtest-smoke / e2e
// configuration: SlowQuery == 0 keeps every query as slow.
func TestZeroThresholdTracesEverything(t *testing.T) {
	tc := New(Options{SlowQuery: 0})
	for i := 0; i < 3; i++ {
		tr := tc.Start()
		if trig := tc.Finish(tr); trig != "slow" {
			t.Fatalf("query %d trigger = %q, want slow", i, trig)
		}
	}
	if st := tc.Stats(); st.Slow != 3 || st.RingEntries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingConcurrentWriters hammers one small ring from many
// goroutines and checks the invariants the /debug endpoint depends
// on: bounded memory (never more than RingSize entries), race-clean
// eviction, and newest-first ordering by snapshot id.
func TestRingConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		each    = 200
		size    = 16
	)
	tc := New(Options{SlowQuery: 0, RingSize: size})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent reader exercises snapshot-during-eviction.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if n := len(tc.Snapshots()); n > size {
					panic(fmt.Sprintf("ring grew past its bound: %d > %d", n, size))
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr := tc.Start()
				tr.End(tr.Start(tr.Root(), "plan"))
				tc.Finish(tr)
			}
		}()
	}
	wg.Wait()
	close(stop)

	snaps := tc.Snapshots()
	if len(snaps) != size {
		t.Fatalf("ring holds %d entries after %d pushes, want exactly %d", len(snaps), writers*each, size)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].ID <= snaps[i].ID {
			t.Fatalf("not newest-first: id[%d]=%d <= id[%d]=%d", i-1, snaps[i-1].ID, i, snaps[i].ID)
		}
	}
	if st := tc.Stats(); st.Slow != writers*each {
		t.Fatalf("slow count %d, want %d", st.Slow, writers*each)
	}
}

// TestRingPartial: before wrapping, the ring returns only what was
// pushed, newest first.
func TestRingPartial(t *testing.T) {
	tc := New(Options{SlowQuery: 0, RingSize: 8})
	for i := 0; i < 3; i++ {
		tc.Finish(tc.Start())
	}
	snaps := tc.Snapshots()
	if len(snaps) != 3 || snaps[0].ID != 3 || snaps[2].ID != 1 {
		t.Fatalf("partial ring = %v", ids(snaps))
	}
}

func ids(snaps []*Snapshot) []uint64 {
	out := make([]uint64, len(snaps))
	for i, s := range snaps {
		out[i] = s.ID
	}
	return out
}
