//go:build !race

package trace

// raceEnabled mirrors the -race flag; see race_detect_test.go.
const raceEnabled = false
