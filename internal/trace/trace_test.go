package trace

import (
	"runtime/debug"
	"testing"
	"time"
)

// measureAllocs reports steady-state allocations per call with GC
// pinned off, after one warm-up call.
func measureAllocs(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f()
	return testing.AllocsPerRun(200, f)
}

// TestNilTraceZeroAllocs pins the disabled path's contract: every
// recorder method on a nil *Trace (and Start/Finish on a nil *Tracer)
// is allocation-free — the cost tracing adds to an untraced query is
// nil checks only.
func TestNilTraceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	var tr *Trace
	var tc *Tracer
	n := measureAllocs(func() {
		tr2 := tc.Start()
		root := tr2.Root()
		sp := tr2.Start(root, "plan")
		tr2.Attr(sp, "terms", 3)
		tr2.AttrStr(sp, "access", "index")
		tr2.End(sp)
		tr2.SetQuery("mongo", `{"a":1}`, "find")
		tr2.SetRequestID("r1")
		tc.Finish(tr2)
		tr.End(tr.Start(tr.Root(), "x"))
	})
	if n != 0 {
		t.Fatalf("nil-trace path allocates: %v allocs/op, want 0", n)
	}
}

// TestArmedRecorderReuse pins that a pooled recorder's slices are
// reused across queries: after a warm-up query, recording a trace of
// the same shape allocates only at snapshot time, never during span
// recording.
func TestArmedRecorderReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	tc := New(Options{SlowQuery: -1, SampleEvery: 1})
	record := func() {
		tr := tc.Start()
		sp := tr.Start(tr.Root(), "plan")
		tr.Attr(sp, "terms", 2)
		tr.End(sp)
		tc.Finish(tr)
	}
	record() // warm the pool and grow the arenas
	// Finish materializes a Snapshot (allocation is expected there);
	// measure only the recording half by never finishing.
	tr := tc.Start()
	n := measureAllocs(func() {
		sp := tr.Start(tr.Root(), "plan")
		tr.Attr(sp, "terms", 2)
		tr.End(sp)
		tr.mu.Lock()
		tr.spans = tr.spans[:1]
		tr.attrs = tr.attrs[:0]
		tr.mu.Unlock()
	})
	tc.Finish(tr)
	if n != 0 {
		t.Fatalf("steady-state span recording allocates: %v allocs/op, want 0", n)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTrace("request")
	plan := tr.Start(tr.Root(), "plan")
	tr.AttrStr(plan, "access", "index")
	tr.Attr(plan, "terms_kept", 2)
	tr.End(plan)
	probe := tr.Start(tr.Root(), "probe")
	tr.Attr(probe, "shard", 3)
	tr.End(probe)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d roots, want 1", len(spans))
	}
	root := spans[0]
	if root.Name != "request" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want request with 2", root.Name, len(root.Children))
	}
	if root.DurationNS <= 0 {
		t.Fatalf("open root span rendered with duration %d, want > 0", root.DurationNS)
	}
	p := root.Children[0]
	if p.Name != "plan" || p.Attrs["access"] != "index" || p.Attrs["terms_kept"] != int64(2) {
		t.Fatalf("plan span wrong: %+v", p)
	}
	if root.Children[1].Attrs["shard"] != int64(3) {
		t.Fatalf("probe span wrong: %+v", root.Children[1])
	}
}

func TestStageNS(t *testing.T) {
	tr := NewTrace("request")
	for i := 0; i < 3; i++ {
		sp := tr.Start(tr.Root(), "probe")
		time.Sleep(time.Millisecond)
		tr.End(sp)
	}
	snap := tr.snapshot("slow", time.Since(tr.start))
	st := snap.StageNS()
	if st["probe"] < 3*int64(time.Millisecond) {
		t.Fatalf("probe stage total %d, want >= 3ms summed across shards", st["probe"])
	}
	if st["request"] != snap.DurationNS {
		t.Fatalf("request stage %d != trace duration %d", st["request"], snap.DurationNS)
	}
}
