package trace

import "sync"

// ring is a fixed-size buffer of kept trace snapshots. Pushes evict
// the oldest entry once full, so memory is bounded by size × snapshot
// size regardless of how many slow queries the daemon sees; reads
// return newest first — the order GET /debug/queries serves.
type ring struct {
	mu   sync.Mutex
	buf  []*Snapshot // circular; buf[next] is the oldest once wrapped
	next int
	full bool
	seq  uint64
}

func newRing(size int) *ring {
	return &ring{buf: make([]*Snapshot, size)}
}

// push stores s, assigning its sequence id under the same lock so
// insertion order and id order agree even with concurrent writers —
// the invariant that makes "newest first" well defined.
func (r *ring) push(s *Snapshot) {
	r.mu.Lock()
	r.seq++
	s.ID = r.seq
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *ring) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// snapshots copies the held entries, newest first.
func (r *ring) snapshots() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*Snapshot, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
