// Package trace is jsonstored's pooled per-query trace recorder: a
// span tree with per-stage wall time and typed attributes, threaded
// through the read path (request → compile → plan → per-shard probe →
// eval → merge). The recorder is designed around one hard constraint:
// when a query is not traced, the instrumentation must cost nothing
// but a nil check — every method is safe (and trivially cheap) on a
// nil *Trace, so call sites are unconditional and the untraced hot
// path stays allocation-free.
//
// Recorders come from a Tracer (tracer.go), which arms one per query
// when the sampler fires or slow-query detection is on, and decides at
// Finish whether the completed trace is kept: slow traces (and sampled
// ones) are materialized into Snapshots, pushed onto a fixed-size ring
// (ring.go) served by GET /debug/queries, and logged through slog.
// Store.Explain drives the same recorder in always-on mode, so explain
// output is the actual recorded trace rather than a parallel code
// path.
package trace

import (
	"sync"
	"time"
)

// SpanID names one span within one Trace. The root span is always 0;
// None is the id returned by operations on a nil (untraced) recorder,
// and is itself accepted (and ignored) everywhere a SpanID is taken.
type SpanID int32

// None is the SpanID of "no span": Start on a nil Trace returns it,
// and every method accepting a SpanID treats it as a no-op target.
const None SpanID = -1

// span is one recorded stage. Times are offsets from the trace start,
// so a pooled recorder carries no absolute timestamps between queries.
type span struct {
	name   string
	parent SpanID
	start  time.Duration
	dur    time.Duration
}

// attrRec is one key/value attribute, tagged with its span because
// concurrent per-shard workers interleave their appends in the shared
// arena.
type attrRec struct {
	span  SpanID
	key   string
	str   string
	num   int64
	isStr bool
}

// Trace records one query's span tree. A Trace is either armed
// (non-nil, from Tracer.Start or NewTrace) or absent (nil); methods on
// a nil Trace do nothing, which is the entire disabled path. Armed
// recorders are safe for concurrent use — the store's parallel shard
// workers record probe/eval spans from multiple goroutines.
type Trace struct {
	start   time.Time
	sampled bool

	lang      string
	source    string
	mode      string
	requestID string

	mu    sync.Mutex
	spans []span
	attrs []attrRec
}

// NewTrace returns a standalone always-armed recorder whose root span
// has the given name. Store.Explain and tests use it; request tracing
// goes through a Tracer so pooling, sampling and the ring apply.
func NewTrace(rootName string) *Trace {
	t := &Trace{}
	t.reset(rootName)
	return t
}

// reset re-arms a (possibly pooled) recorder: clears spans and attrs
// keeping their capacity, stamps the start time and opens the root
// span.
func (t *Trace) reset(rootName string) {
	t.start = time.Now()
	t.sampled = false
	t.lang, t.source, t.mode, t.requestID = "", "", "", ""
	t.spans = append(t.spans[:0], span{name: rootName, parent: None})
	t.attrs = t.attrs[:0]
}

// Root returns the root span's id (0), or None on a nil Trace.
func (t *Trace) Root() SpanID {
	if t == nil {
		return None
	}
	return 0
}

// Start opens a child span under parent and returns its id. On a nil
// Trace it returns None.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	if t == nil {
		return None
	}
	off := time.Since(t.start)
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, start: off})
	t.mu.Unlock()
	return id
}

// End closes the span, recording its duration. Ending None (or ending
// on a nil Trace) is a no-op; ending twice keeps the later duration.
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	off := time.Since(t.start)
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].dur = off - t.spans[id].start
	}
	t.mu.Unlock()
}

// Attr attaches an integer attribute to the span.
func (t *Trace) Attr(id SpanID, key string, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, attrRec{span: id, key: key, num: v})
	t.mu.Unlock()
}

// AttrStr attaches a string attribute to the span.
func (t *Trace) AttrStr(id SpanID, key, v string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, attrRec{span: id, key: key, str: v, isStr: true})
	t.mu.Unlock()
}

// SetQuery records the query's language, source text and mode; they
// appear on the trace's Snapshot (and in the slow-query log).
func (t *Trace) SetQuery(lang, source, mode string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lang, t.source, t.mode = lang, source, mode
	t.mu.Unlock()
}

// SetRequestID records the client-supplied X-Request-ID, the join key
// between a load generator's slowest-request report and the
// /debug/queries ring.
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.requestID = id
	t.mu.Unlock()
}

// Sampled reports whether the sampler (rather than only slow-query
// arming) selected this trace.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// SpanOut is one rendered span in a Snapshot's tree. Durations are
// nanoseconds so sub-microsecond stages stay visible.
type SpanOut struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanOut     `json:"children,omitempty"`
}

// Snapshot is one completed, materialized trace: what the ring stores
// and GET /debug/queries serves. Unlike the pooled recorder it owns
// all its memory.
type Snapshot struct {
	// ID is the ring-assigned sequence number, newest highest.
	ID uint64 `json:"id"`
	// Time is when the query started.
	Time time.Time `json:"time"`
	// DurationNS is the whole request's wall time.
	DurationNS int64 `json:"duration_ns"`
	// Trigger is why the trace was kept: "slow", "sample" or "explain".
	Trigger   string     `json:"trigger"`
	Lang      string     `json:"lang,omitempty"`
	Query     string     `json:"query,omitempty"`
	Mode      string     `json:"mode,omitempty"`
	RequestID string     `json:"request_id,omitempty"`
	Spans     []*SpanOut `json:"spans"`
}

// Spans materializes the recorded span tree (root first). The root
// span, if still open, is rendered with the elapsed time so far.
func (t *Trace) Spans() []*SpanOut {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansLocked()
}

func (t *Trace) spansLocked() []*SpanOut {
	nodes := make([]*SpanOut, len(t.spans))
	for i, sp := range t.spans {
		dur := sp.dur
		if dur == 0 && sp.parent == None {
			dur = time.Since(t.start) - sp.start
		}
		nodes[i] = &SpanOut{Name: sp.name, StartNS: int64(sp.start), DurationNS: int64(dur)}
	}
	for _, a := range t.attrs {
		n := nodes[a.span]
		if n.Attrs == nil {
			n.Attrs = make(map[string]any)
		}
		if a.isStr {
			n.Attrs[a.key] = a.str
		} else {
			n.Attrs[a.key] = a.num
		}
	}
	// Spans start strictly after their parent, so parents always precede
	// children in append order: one forward pass builds the tree.
	var roots []*SpanOut
	for i, sp := range t.spans {
		if sp.parent == None || int(sp.parent) >= len(nodes) {
			roots = append(roots, nodes[i])
			continue
		}
		p := nodes[sp.parent]
		p.Children = append(p.Children, nodes[i])
	}
	return roots
}

// snapshot closes the root span at dur and materializes the trace.
// The snapshot's ID is assigned by the ring at push time.
func (t *Trace) snapshot(trigger string, dur time.Duration) *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans[0].dur = dur
	return &Snapshot{
		Time:       t.start,
		DurationNS: int64(dur),
		Trigger:    trigger,
		Lang:       t.lang,
		Query:      t.source,
		Mode:       t.mode,
		RequestID:  t.requestID,
		Spans:      t.spansLocked(),
	}
}

// StageNS sums rendered span durations by name across the whole tree —
// the per-stage totals the slow-query log emits (probe and eval spans
// are per shard; their sum is the aggregate stage cost).
func (s *Snapshot) StageNS() map[string]int64 {
	out := make(map[string]int64)
	var walk func(ns []*SpanOut)
	walk = func(ns []*SpanOut) {
		for _, n := range ns {
			out[n.Name] += n.DurationNS
			walk(n.Children)
		}
	}
	walk(s.Spans)
	return out
}
