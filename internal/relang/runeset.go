// Package relang is a self-contained regular-language engine over Σ*,
// where Σ is the set of unicode characters (§2 of the paper). It is the
// substrate behind every regular-expression feature of the paper: the
// "pattern" and "patternProperties" keywords of JSON Schema (Table 1),
// the non-deterministic key axes X_e of JNL (§4.3) and the modalities
// ◇_e/◻_e of JSL (§5.2), and the language-theoretic operations
// (complement, intersection, emptiness, witness extraction) required by
// the satisfiability procedures of Propositions 5, 7 and 10.
//
// The pipeline is classical: a hand-written parser produces an AST, a
// Thompson construction produces an ε-NFA with transitions labelled by
// rune-interval sets, a subset construction produces a complete DFA over
// a partition of Σ into intervals, and Moore minimization canonicalizes
// it. All language operations are implemented on DFAs. Matching is
// full-string (language membership), as in the paper's formalization.
package relang

import "sort"

// maxRune is the largest unicode code point.
const maxRune rune = 0x10FFFF

// runeRange is a closed interval of runes.
type runeRange struct {
	lo, hi rune
}

// runeSet is a set of runes stored as sorted, disjoint, non-adjacent
// closed intervals. The zero value is the empty set.
type runeSet []runeRange

// anyRune is the full alphabet Σ.
var anyRune = runeSet{{0, maxRune}}

func singleRune(r rune) runeSet { return runeSet{{r, r}} }

func (s runeSet) isEmpty() bool { return len(s) == 0 }

func (s runeSet) contains(r rune) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].hi < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo].lo <= r
}

// normalize sorts and merges overlapping or adjacent intervals.
func normalize(rs []runeRange) runeSet {
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.lo <= last.hi+1 {
			if r.hi > last.hi {
				last.hi = r.hi
			}
		} else {
			out = append(out, r)
		}
	}
	return runeSet(out)
}

func (s runeSet) union(t runeSet) runeSet {
	merged := make([]runeRange, 0, len(s)+len(t))
	merged = append(merged, s...)
	merged = append(merged, t...)
	return normalize(merged)
}

func (s runeSet) negate() runeSet {
	var out []runeRange
	next := rune(0)
	for _, r := range s {
		if r.lo > next {
			out = append(out, runeRange{next, r.lo - 1})
		}
		next = r.hi + 1
		if r.hi == maxRune {
			return runeSet(out)
		}
	}
	out = append(out, runeRange{next, maxRune})
	return runeSet(out)
}

func (s runeSet) intersect(t runeSet) runeSet {
	var out []runeRange
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		lo := s[i].lo
		if t[j].lo > lo {
			lo = t[j].lo
		}
		hi := s[i].hi
		if t[j].hi < hi {
			hi = t[j].hi
		}
		if lo <= hi {
			out = append(out, runeRange{lo, hi})
		}
		if s[i].hi < t[j].hi {
			i++
		} else {
			j++
		}
	}
	return runeSet(out)
}

// sample returns an arbitrary rune in the set, preferring printable
// ASCII so that witness strings are readable.
func (s runeSet) sample() (rune, bool) {
	if len(s) == 0 {
		return 0, false
	}
	// Prefer a lowercase letter, then any printable ASCII.
	for _, pref := range []runeRange{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {0x20, 0x7e}} {
		if in := s.intersect(runeSet{pref}); len(in) > 0 {
			return in[0].lo, true
		}
	}
	return s[0].lo, true
}
