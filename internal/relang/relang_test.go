package relang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchBasics(t *testing.T) {
	tests := []struct {
		pattern string
		yes     []string
		no      []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd", "xabc"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+", []string{"a", "aa"}, []string{"", "b"}},
		{"a?", []string{"", "a"}, []string{"aa"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab", "c"}},
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "aba"}},
		{"(01)+", []string{"01", "0101"}, []string{"", "0", "10", "011"}},
		{".", []string{"a", "0", "é", "😀"}, []string{"", "ab"}},
		{".*", []string{"", "anything at all"}, nil},
		{"[a-c]", []string{"a", "b", "c"}, []string{"d", "", "ab"}},
		{"[^a-c]", []string{"d", "z", "0"}, []string{"a", "b", "c", ""}},
		{"[abq-z]+", []string{"ab", "qz", "zzz"}, []string{"c", "p"}},
		{"a{3}", []string{"aaa"}, []string{"aa", "aaaa"}},
		{"a{2,4}", []string{"aa", "aaa", "aaaa"}, []string{"a", "aaaaa"}},
		{"a{2,}", []string{"aa", "aaaaaa"}, []string{"a", ""}},
		{`\d+`, []string{"0", "123"}, []string{"", "a", "1a"}},
		{`\w+`, []string{"abc_123"}, []string{"", "a b"}},
		{`a\.b`, []string{"a.b"}, []string{"axb"}},
		{`a(b|c)a`, []string{"aba", "aca"}, []string{"aa", "abca"}},
		{`[A-z]*@ciws\.cl`, []string{"john@ciws.cl", "@ciws.cl"}, []string{"john@ciws,cl", "john@ciwsxcl"}},
		{"", []string{""}, []string{"a"}},
		{"()", []string{""}, []string{"a"}},
		{"(a|)b", []string{"ab", "b"}, []string{"a"}},
	}
	for _, tc := range tests {
		re, err := Compile(tc.pattern)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.pattern, err)
			continue
		}
		for _, s := range tc.yes {
			if !re.Match(s) {
				t.Errorf("%q should match %q (NFA)", tc.pattern, s)
			}
			if !re.MatchDFA(s) {
				t.Errorf("%q should match %q (DFA)", tc.pattern, s)
			}
		}
		for _, s := range tc.no {
			if re.Match(s) {
				t.Errorf("%q should not match %q (NFA)", tc.pattern, s)
			}
			if re.MatchDFA(s) {
				t.Errorf("%q should not match %q (DFA)", tc.pattern, s)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "a)", "(a", "[", "[a", "*", "+a", "?", "a|*", `\q`, "[z-a]", `\u00g`, "a{4,2}", "a{1,999}"}
	for _, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q): expected error", p)
		}
	}
}

func TestBraceAsLiteralWhenNotRepeat(t *testing.T) {
	re := MustCompile("a{x}")
	if !re.Match("a{x}") || re.Match("a") {
		t.Error("non-numeric {x} should be literal")
	}
}

func TestLiteral(t *testing.T) {
	for _, w := range []string{"", "plain", "we.ird*chars+[]", "uni😀code"} {
		re := Literal(w)
		if !re.Match(w) {
			t.Errorf("Literal(%q) must match itself", w)
		}
		if re.Match(w+"x") || (w != "" && re.Match("")) {
			t.Errorf("Literal(%q) matched a different string", w)
		}
	}
}

func TestEmptinessUniversality(t *testing.T) {
	if !None().IsEmpty() || None().IsUniversal() {
		t.Error("None should be empty, not universal")
	}
	if Any().IsEmpty() || !Any().IsUniversal() {
		t.Error("Any should be universal, not empty")
	}
	if MustCompile("a*").IsUniversal() {
		t.Error("a* is not universal")
	}
	if MustCompile(".|.?.*").IsUniversal() != true {
		t.Error(".|.?.* should be universal (covers all lengths)")
	}
	// Intersection of disjoint languages is empty.
	inter := MustCompile("a+").Intersect(MustCompile("b+"))
	if !inter.IsEmpty() {
		t.Error("a+ ∩ b+ should be empty")
	}
}

func TestWitness(t *testing.T) {
	re := MustCompile("ab|abc")
	w, ok := re.Witness()
	if !ok || w != "ab" {
		t.Errorf("Witness = %q, want shortest ab", w)
	}
	if _, ok := None().Witness(); ok {
		t.Error("None has no witness")
	}
	w, ok = Any().Witness()
	if !ok || w != "" {
		t.Errorf("Any witness = %q, want empty string", w)
	}
	// Witness of the complement of a finite language.
	comp := Literal("a").Complement()
	w, ok = comp.Witness()
	if !ok || w == "a" || !comp.Match(w) {
		t.Errorf("complement witness = %q", w)
	}
}

func TestEnumerate(t *testing.T) {
	re := MustCompile("a|b|aa")
	got := re.Enumerate(10)
	if len(got) != 3 {
		t.Fatalf("Enumerate = %v, want 3 strings", got)
	}
	for _, s := range got {
		if !re.Match(s) {
			t.Errorf("enumerated %q is not in the language", s)
		}
	}
	if got[len(got)-1] != "aa" {
		t.Errorf("shortlex order expected, got %v", got)
	}
	inf := MustCompile("x*").Enumerate(5)
	if len(inf) != 5 {
		t.Errorf("Enumerate on infinite language = %d strings, want 5", len(inf))
	}
	seen := map[string]bool{}
	for _, s := range inf {
		if seen[s] {
			t.Errorf("duplicate enumerated string %q", s)
		}
		seen[s] = true
	}
}

func TestSetOperations(t *testing.T) {
	a := MustCompile("[ab]*")
	b := MustCompile("a*")
	if !a.Includes(b) {
		t.Error("[ab]* includes a*")
	}
	if b.Includes(a) {
		t.Error("a* does not include [ab]*")
	}
	if !a.Equiv(MustCompile("(a|b)*")) {
		t.Error("[ab]* ≡ (a|b)*")
	}
	minus := a.Minus(b)
	if minus.Match("aaa") || !minus.Match("ab") || minus.Match("") {
		t.Error("difference semantics wrong")
	}
	union := b.Union(MustCompile("b+"))
	if !union.Match("bb") || !union.Match("aa") || union.Match("ab") {
		t.Error("union semantics wrong")
	}
}

func TestComplementRoundTrip(t *testing.T) {
	re := MustCompile("(ab)+")
	cc := re.Complement().Complement()
	if !cc.Equiv(re) {
		t.Error("double complement should be equivalent")
	}
	for _, s := range []string{"", "ab", "abab", "a", "ba"} {
		if re.Match(s) == re.Complement().Match(s) {
			t.Errorf("complement must flip membership for %q", s)
		}
	}
}

func TestMinimalDFASizes(t *testing.T) {
	// Classic: (a|b)*a(a|b)^{n} needs 2^{n+1} states deterministically
	// over {a,b}; over full Σ one more dead state absorbs other runes.
	re := MustCompile("[ab]*a[ab][ab]")
	if got := re.NumDFAStates(); got != 9 {
		t.Errorf("minimal DFA for [ab]*a[ab][ab] has %d states, want 9", got)
	}
	// A fixed word of length n needs n+2 states (n+1 on the spine plus
	// the dead state).
	if got := Literal("abc").NumDFAStates(); got != 5 {
		t.Errorf("minimal DFA for literal abc has %d states, want 5", got)
	}
}

func TestUnicode(t *testing.T) {
	re := MustCompile("[α-ω]+")
	if !re.Match("αβγ") || re.Match("abc") {
		t.Error("greek class failed")
	}
	esc := MustCompile(`é+`)
	if !esc.Match("ééé") || esc.Match("e") {
		t.Error("unicode escape failed")
	}
}

// randPattern generates a random pattern over {a,b} with limited depth.
func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return string(rune('a' + r.Intn(2)))
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(" + randPattern(r, depth-1) + ")?"
	default:
		return string(rune('a' + r.Intn(2)))
	}
}

type patAndInput struct {
	pattern string
	input   string
}

func (patAndInput) Generate(r *rand.Rand, size int) reflect.Value {
	p := randPattern(r, 3)
	n := r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + r.Intn(2)))
	}
	return reflect.ValueOf(patAndInput{p, sb.String()})
}

// TestQuickNFAvsDFA checks NFA simulation and the minimal DFA agree on
// membership for random patterns and inputs.
func TestQuickNFAvsDFA(t *testing.T) {
	f := func(pi patAndInput) bool {
		re, err := Compile(pi.pattern)
		if err != nil {
			return false
		}
		return re.Match(pi.input) == re.MatchDFA(pi.input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestQuickComplement checks s ∈ L(e) xor s ∈ L(¬e).
func TestQuickComplement(t *testing.T) {
	f := func(pi patAndInput) bool {
		re, err := Compile(pi.pattern)
		if err != nil {
			return false
		}
		return re.Match(pi.input) != re.Complement().Match(pi.input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersection checks product-automaton semantics pointwise.
func TestQuickIntersection(t *testing.T) {
	f := func(pi patAndInput, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p2 := randPattern(r, 3)
		re1, err1 := Compile(pi.pattern)
		re2, err2 := Compile(p2)
		if err1 != nil || err2 != nil {
			return false
		}
		inter := re1.Intersect(re2)
		uni := re1.Union(re2)
		s := pi.input
		return inter.Match(s) == (re1.Match(s) && re2.Match(s)) &&
			uni.Match(s) == (re1.Match(s) || re2.Match(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickWitnessIsMember: any witness produced is in the language.
func TestQuickWitnessIsMember(t *testing.T) {
	f := func(pi patAndInput) bool {
		re, err := Compile(pi.pattern)
		if err != nil {
			return false
		}
		w, ok := re.Witness()
		if !ok {
			return re.IsEmpty()
		}
		return re.Match(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestRuneSetOps(t *testing.T) {
	a := normalize([]runeRange{{'a', 'f'}, {'c', 'k'}})
	if len(a) != 1 || a[0] != (runeRange{'a', 'k'}) {
		t.Errorf("normalize merge failed: %v", a)
	}
	neg := a.negate()
	if neg.contains('c') || !neg.contains('z') || !neg.contains(0) {
		t.Error("negate failed")
	}
	if got := a.intersect(neg); !got.isEmpty() {
		t.Errorf("a ∩ ¬a = %v, want empty", got)
	}
	if u := a.union(neg); len(u) != 1 || u[0] != (runeRange{0, maxRune}) {
		t.Errorf("a ∪ ¬a = %v, want Σ", u)
	}
	r, ok := a.sample()
	if !ok || !a.contains(r) {
		t.Error("sample not in set")
	}
}

func TestEmptyClassIsRejectedGracefully(t *testing.T) {
	// [^\\u0000-\U0010FFFF]-style empty classes cannot be written in our
	// syntax, but the negation of a full class is empty; make sure an
	// empty-set classNode compiles to the empty language.
	re := fromAST("test", classNode{runeSet{}})
	if re.Match("") || re.Match("a") || !re.IsEmpty() {
		t.Error("empty class should accept nothing")
	}
}
