package relang

import (
	"fmt"
	"strings"
)

// node is a regular-expression AST node.
type node interface{ isNode() }

type (
	// emptyNode denotes the empty language ∅.
	emptyNode struct{}
	// epsNode denotes the language {ε}.
	epsNode struct{}
	// classNode matches one rune in the set.
	classNode struct{ set runeSet }
	// concatNode is sequential composition.
	concatNode struct{ parts []node }
	// unionNode is alternation.
	unionNode struct{ parts []node }
	// starNode is Kleene closure; plus/opt/{m,n} are desugared onto it
	// and concat during parsing.
	starNode struct{ sub node }
)

func (emptyNode) isNode()  {}
func (epsNode) isNode()    {}
func (classNode) isNode()  {}
func (concatNode) isNode() {}
func (unionNode) isNode()  {}
func (starNode) isNode()   {}

// ParseError reports a malformed regular expression.
type ParseError struct {
	Pattern string
	Offset  int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("relang: parse %q at %d: %s", e.Pattern, e.Offset, e.Msg)
}

// parseAST parses the pattern into an AST. Supported syntax: literals,
// escapes (\\, \., \n, \t, \d, \w, \s and their complements, \uXXXX),
// '.', character classes [a-z], negated classes [^...], grouping (...),
// alternation |, the quantifiers *, +, ?, and bounded repetition {m},
// {m,}, {m,n} (n bounded to keep expansion small).
func parseAST(pattern string) (node, error) {
	p := &reParser{pattern: []rune(pattern), src: pattern}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.pattern) {
		return nil, p.errf("unexpected %q", p.pattern[p.pos])
	}
	return n, nil
}

type reParser struct {
	pattern []rune
	src     string
	pos     int
}

func (p *reParser) errf(format string, args ...any) error {
	return &ParseError{Pattern: p.src, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *reParser) peek() (rune, bool) {
	if p.pos >= len(p.pattern) {
		return 0, false
	}
	return p.pattern[p.pos], true
}

func (p *reParser) alternation() (node, error) {
	first, err := p.sequence()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.sequence()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return unionNode{parts}, nil
}

func (p *reParser) sequence() (node, error) {
	var parts []node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		atom, err := p.quantified()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	switch len(parts) {
	case 0:
		return epsNode{}, nil
	case 1:
		return parts[0], nil
	}
	return concatNode{parts}, nil
}

// maxBoundedRepeat caps {m,n} expansion; patterns in schemas are small.
const maxBoundedRepeat = 256

func (p *reParser) quantified() (node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch c {
		case '*':
			p.pos++
			atom = starNode{atom}
		case '+':
			p.pos++
			atom = concatNode{[]node{atom, starNode{atom}}}
		case '?':
			p.pos++
			atom = unionNode{[]node{epsNode{}, atom}}
		case '{':
			save := p.pos
			rep, ok, err := p.tryRepeat(atom)
			if err != nil {
				return nil, err
			}
			if !ok {
				p.pos = save
				return atom, nil
			}
			atom = rep
		default:
			return atom, nil
		}
	}
}

// tryRepeat parses {m}, {m,}, {m,n} after an atom. A '{' that does not
// start a well-formed repetition is treated as a literal by the caller.
func (p *reParser) tryRepeat(atom node) (node, bool, error) {
	p.pos++ // consume '{'
	m, ok := p.integer()
	if !ok {
		return nil, false, nil
	}
	n := m
	unbounded := false
	if c, _ := p.peek(); c == ',' {
		p.pos++
		if c2, _ := p.peek(); c2 == '}' {
			unbounded = true
		} else {
			n, ok = p.integer()
			if !ok {
				return nil, false, nil
			}
		}
	}
	if c, _ := p.peek(); c != '}' {
		return nil, false, nil
	}
	p.pos++
	if n < m {
		return nil, false, p.errf("repetition {%d,%d} has max < min", m, n)
	}
	if n > maxBoundedRepeat {
		return nil, false, p.errf("repetition bound %d exceeds limit %d", n, maxBoundedRepeat)
	}
	var parts []node
	for i := 0; i < m; i++ {
		parts = append(parts, atom)
	}
	if unbounded {
		parts = append(parts, starNode{atom})
	} else {
		opt := unionNode{[]node{epsNode{}, atom}}
		for i := m; i < n; i++ {
			parts = append(parts, opt)
		}
	}
	switch len(parts) {
	case 0:
		return epsNode{}, true, nil
	case 1:
		return parts[0], true, nil
	}
	return concatNode{parts}, true, nil
}

func (p *reParser) integer() (int, bool) {
	start := p.pos
	n := 0
	for p.pos < len(p.pattern) && p.pattern[p.pos] >= '0' && p.pattern[p.pos] <= '9' {
		n = n*10 + int(p.pattern[p.pos]-'0')
		if n > 1<<20 {
			return 0, false
		}
		p.pos++
	}
	return n, p.pos > start
}

func (p *reParser) atom() (node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		inner, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if c, _ := p.peek(); c != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	case '.':
		p.pos++
		return classNode{anyRune}, nil
	case '[':
		return p.charClass()
	case '\\':
		p.pos++
		return p.escape()
	case '*', '+', '?':
		return nil, p.errf("quantifier %q with nothing to repeat", c)
	case ')':
		return nil, p.errf("unmatched ')'")
	default:
		p.pos++
		return classNode{singleRune(c)}, nil
	}
}

var (
	digitSet = runeSet{{'0', '9'}}
	wordSet  = normalize([]runeRange{{'0', '9'}, {'A', 'Z'}, {'_', '_'}, {'a', 'z'}})
	spaceSet = normalize([]runeRange{{'\t', '\n'}, {'\f', '\r'}, {' ', ' '}})
)

func (p *reParser) escape() (node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, p.errf("trailing backslash")
	}
	p.pos++
	switch c {
	case 'd':
		return classNode{digitSet}, nil
	case 'D':
		return classNode{digitSet.negate()}, nil
	case 'w':
		return classNode{wordSet}, nil
	case 'W':
		return classNode{wordSet.negate()}, nil
	case 's':
		return classNode{spaceSet}, nil
	case 'S':
		return classNode{spaceSet.negate()}, nil
	case 'n':
		return classNode{singleRune('\n')}, nil
	case 't':
		return classNode{singleRune('\t')}, nil
	case 'r':
		return classNode{singleRune('\r')}, nil
	case 'u':
		r := rune(0)
		for i := 0; i < 4; i++ {
			h, ok := p.peek()
			if !ok {
				return nil, p.errf("truncated \\u escape")
			}
			p.pos++
			r <<= 4
			switch {
			case h >= '0' && h <= '9':
				r |= h - '0'
			case h >= 'a' && h <= 'f':
				r |= h - 'a' + 10
			case h >= 'A' && h <= 'F':
				r |= h - 'A' + 10
			default:
				return nil, p.errf("bad hex digit %q", h)
			}
		}
		return classNode{singleRune(r)}, nil
	case '\\', '.', '[', ']', '(', ')', '{', '}', '|', '*', '+', '?', '^', '$', '-', '/', '"':
		return classNode{singleRune(c)}, nil
	default:
		return nil, p.errf("unsupported escape \\%c", c)
	}
}

func (p *reParser) charClass() (node, error) {
	p.pos++ // consume '['
	negated := false
	if c, _ := p.peek(); c == '^' {
		negated = true
		p.pos++
	}
	var ranges []runeRange
	first := true
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated character class")
		}
		if c == ']' && !first {
			p.pos++
			set := normalize(ranges)
			if negated {
				set = set.negate()
			}
			return classNode{set}, nil
		}
		first = false
		lo, err := p.classChar()
		if err != nil {
			return nil, err
		}
		hi := lo
		if c, _ := p.peek(); c == '-' {
			if c2 := p.lookahead(1); c2 != ']' && c2 != 0 {
				p.pos++ // consume '-'
				hi, err = p.classChar()
				if err != nil {
					return nil, err
				}
				if hi < lo {
					return nil, p.errf("inverted range %c-%c", lo, hi)
				}
			}
		}
		ranges = append(ranges, runeRange{lo, hi})
	}
}

func (p *reParser) lookahead(k int) rune {
	if p.pos+k >= len(p.pattern) {
		return 0
	}
	return p.pattern[p.pos+k]
}

// classChar reads a single character inside a class, handling escapes.
func (p *reParser) classChar() (rune, error) {
	c, ok := p.peek()
	if !ok {
		return 0, p.errf("unterminated character class")
	}
	p.pos++
	if c != '\\' {
		return c, nil
	}
	e, ok := p.peek()
	if !ok {
		return 0, p.errf("trailing backslash in class")
	}
	p.pos++
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '\\', ']', '[', '-', '^', '.', '*', '+', '?', '(', ')', '{', '}', '|', '/', '"':
		return e, nil
	default:
		return 0, p.errf("unsupported escape \\%c in class", e)
	}
}

// astString renders the AST back to a normalized pattern, used by
// Regex.String for diagnostics.
func astString(n node) string {
	var sb strings.Builder
	writeAST(&sb, n, 0)
	return sb.String()
}

// precedence levels: 0 union, 1 concat, 2 star/atom.
func writeAST(sb *strings.Builder, n node, prec int) {
	switch t := n.(type) {
	case emptyNode:
		sb.WriteString("[^\\u0000-\\U0010FFFF]") // unmatchable marker
	case epsNode:
		if prec >= 1 {
			sb.WriteString("()")
		}
	case classNode:
		writeClass(sb, t.set)
	case concatNode:
		if prec > 1 {
			sb.WriteByte('(')
		}
		for _, part := range t.parts {
			writeAST(sb, part, 1)
		}
		if prec > 1 {
			sb.WriteByte(')')
		}
	case unionNode:
		if prec > 0 {
			sb.WriteByte('(')
		}
		for i, part := range t.parts {
			if i > 0 {
				sb.WriteByte('|')
			}
			writeAST(sb, part, 0)
		}
		if prec > 0 {
			sb.WriteByte(')')
		}
	case starNode:
		writeAST(sb, t.sub, 2)
		sb.WriteByte('*')
	}
}

func writeClass(sb *strings.Builder, set runeSet) {
	if len(set) == 1 && set[0].lo == set[0].hi {
		writeClassRune(sb, set[0].lo, false)
		return
	}
	if len(set) == 1 && set[0] == (runeRange{0, maxRune}) {
		sb.WriteByte('.')
		return
	}
	sb.WriteByte('[')
	for _, r := range set {
		writeClassRune(sb, r.lo, true)
		if r.hi != r.lo {
			sb.WriteByte('-')
			writeClassRune(sb, r.hi, true)
		}
	}
	sb.WriteByte(']')
}

func writeClassRune(sb *strings.Builder, r rune, inClass bool) {
	special := `\.[](){}|*+?^$-`
	if !inClass {
		special = `\.[](){}|*+?^$`
	}
	if strings.ContainsRune(special, r) {
		sb.WriteByte('\\')
		sb.WriteRune(r)
		return
	}
	switch {
	case r == '\n':
		sb.WriteString(`\n`)
	case r == '\t':
		sb.WriteString(`\t`)
	case r < 0x20 || r > 0x10000:
		fmt.Fprintf(sb, `\u%04x`, r)
	default:
		sb.WriteRune(r)
	}
}
