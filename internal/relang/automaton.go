package relang

import "sort"

// nfa is a Thompson ε-NFA with a single start and single accept state.
// Transitions are labelled by rune sets; ε-transitions have a nil set.
type nfa struct {
	numStates int
	start     int
	accept    int
	// edges[s] lists (set, target); eps[s] lists ε-targets.
	edges [][]nfaEdge
	eps   [][]int
}

type nfaEdge struct {
	set runeSet
	to  int
}

func (a *nfa) newState() int {
	a.edges = append(a.edges, nil)
	a.eps = append(a.eps, nil)
	a.numStates++
	return a.numStates - 1
}

func (a *nfa) addEdge(from int, set runeSet, to int) {
	a.edges[from] = append(a.edges[from], nfaEdge{set, to})
}

func (a *nfa) addEps(from, to int) {
	a.eps[from] = append(a.eps[from], to)
}

// buildNFA compiles an AST into a Thompson NFA.
func buildNFA(n node) *nfa {
	a := &nfa{}
	start, accept := a.compile(n)
	a.start, a.accept = start, accept
	return a
}

func (a *nfa) compile(n node) (start, accept int) {
	switch t := n.(type) {
	case emptyNode:
		s, f := a.newState(), a.newState()
		return s, f // no connection: empty language
	case epsNode:
		s, f := a.newState(), a.newState()
		a.addEps(s, f)
		return s, f
	case classNode:
		s, f := a.newState(), a.newState()
		if !t.set.isEmpty() {
			a.addEdge(s, t.set, f)
		}
		return s, f
	case concatNode:
		s, f := a.compile(t.parts[0])
		for _, part := range t.parts[1:] {
			s2, f2 := a.compile(part)
			a.addEps(f, s2)
			f = f2
		}
		return s, f
	case unionNode:
		s, f := a.newState(), a.newState()
		for _, part := range t.parts {
			ps, pf := a.compile(part)
			a.addEps(s, ps)
			a.addEps(pf, f)
		}
		return s, f
	case starNode:
		s, f := a.newState(), a.newState()
		ps, pf := a.compile(t.sub)
		a.addEps(s, f)
		a.addEps(s, ps)
		a.addEps(pf, ps)
		a.addEps(pf, f)
		return s, f
	}
	panic("relang: unknown AST node")
}

// epsClosure expands a state set through ε-transitions in place and
// returns it sorted and deduplicated.
func (a *nfa) epsClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// match runs the NFA over the input string (full match).
func (a *nfa) match(s string) bool {
	cur := a.epsClosure([]int{a.start})
	for _, r := range s {
		var next []int
		seen := map[int]bool{}
		for _, st := range cur {
			for _, e := range a.edges[st] {
				if e.set.contains(r) && !seen[e.to] {
					seen[e.to] = true
					next = append(next, e.to)
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = a.epsClosure(next)
	}
	for _, st := range cur {
		if st == a.accept {
			return true
		}
	}
	return false
}

// dfa is a complete deterministic automaton over a partition of Σ into
// intervals. symbols[i] holds the i-th alphabet class; trans[s*k+i] is
// the successor of state s on class i. State 0 is the start state.
// A complete DFA always has at least one state; a dead (non-accepting,
// self-looping) state is materialized as needed.
type dfa struct {
	numStates int
	symbols   []runeSet // disjoint classes covering Σ
	trans     []int     // numStates × len(symbols)
	accepting []bool
}

// classOf returns the alphabet-class index containing r.
func (d *dfa) classOf(r rune) int {
	for i, s := range d.symbols {
		if s.contains(r) {
			return i
		}
	}
	return -1 // unreachable: classes cover Σ
}

func (d *dfa) match(s string) bool {
	st := 0
	k := len(d.symbols)
	for _, r := range s {
		st = d.trans[st*k+d.classOf(r)]
	}
	return d.accepting[st]
}

// alphabetPartition computes the coarsest partition of Σ into intervals
// that refines every transition label of the NFA: it collects all
// interval boundaries and splits Σ at them.
func alphabetPartition(edgeSets []runeSet) []runeSet {
	boundaries := map[rune]bool{0: true}
	for _, set := range edgeSets {
		for _, r := range set {
			boundaries[r.lo] = true
			if r.hi < maxRune {
				boundaries[r.hi+1] = true
			}
		}
	}
	points := make([]rune, 0, len(boundaries))
	for b := range boundaries {
		points = append(points, b)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	classes := make([]runeSet, 0, len(points))
	for i, lo := range points {
		hi := maxRune
		if i+1 < len(points) {
			hi = points[i+1] - 1
		}
		classes = append(classes, runeSet{{lo, hi}})
	}
	return classes
}

// determinize performs subset construction, producing a complete DFA.
func determinize(a *nfa) *dfa {
	var labels []runeSet
	for _, es := range a.edges {
		for _, e := range es {
			labels = append(labels, e.set)
		}
	}
	symbols := alphabetPartition(labels)
	k := len(symbols)

	d := &dfa{symbols: symbols}
	index := map[string]int{}
	keyOf := func(states []int) string {
		buf := make([]byte, 0, len(states)*3)
		for _, s := range states {
			buf = append(buf, byte(s), byte(s>>8), byte(s>>16))
		}
		return string(buf)
	}
	isAccepting := func(states []int) bool {
		for _, s := range states {
			if s == a.accept {
				return true
			}
		}
		return false
	}

	startSet := a.epsClosure([]int{a.start})
	index[keyOf(startSet)] = 0
	d.numStates = 1
	d.accepting = append(d.accepting, isAccepting(startSet))
	d.trans = append(d.trans, make([]int, k)...)
	queue := [][]int{startSet}
	order := [][]int{startSet}

	for qi := 0; qi < len(queue); qi++ {
		states := queue[qi]
		from := index[keyOf(states)]
		for ci, class := range symbols {
			// A class is an interval; membership is decided by any
			// representative rune since classes refine all labels.
			rep := class[0].lo
			var next []int
			seen := map[int]bool{}
			for _, s := range states {
				for _, e := range a.edges[s] {
					if e.set.contains(rep) && !seen[e.to] {
						seen[e.to] = true
						next = append(next, e.to)
					}
				}
			}
			next = a.epsClosure(next)
			nk := keyOf(next)
			to, ok := index[nk]
			if !ok {
				to = d.numStates
				index[nk] = to
				d.numStates++
				d.accepting = append(d.accepting, isAccepting(next))
				d.trans = append(d.trans, make([]int, k)...)
				queue = append(queue, next)
				order = append(order, next)
			}
			d.trans[from*k+ci] = to
		}
	}
	_ = order
	return d
}

// minimize performs Moore partition-refinement minimization, returning a
// canonical minimal complete DFA.
func (d *dfa) minimize() *dfa {
	k := len(d.symbols)
	// Initial partition: accepting vs non-accepting.
	part := make([]int, d.numStates)
	for s := range part {
		if d.accepting[s] {
			part[s] = 1
		}
	}
	numBlocks := 2
	if allSame(d.accepting) {
		numBlocks = 1
		for s := range part {
			part[s] = 0
		}
	}
	for {
		// Signature of a state: its block plus blocks of successors.
		sig := make(map[string]int)
		next := make([]int, d.numStates)
		changed := false
		nb := 0
		for s := 0; s < d.numStates; s++ {
			buf := make([]byte, 0, (k+1)*4)
			buf = appendInt(buf, part[s])
			for c := 0; c < k; c++ {
				buf = appendInt(buf, part[d.trans[s*k+c]])
			}
			key := string(buf)
			b, ok := sig[key]
			if !ok {
				b = nb
				nb++
				sig[key] = b
			}
			next[s] = b
		}
		if nb == numBlocks {
			// Stable: build the quotient.
			break
		}
		part = next
		numBlocks = nb
		changed = true
		_ = changed
	}
	out := &dfa{numStates: numBlocks, symbols: d.symbols}
	out.trans = make([]int, numBlocks*k)
	out.accepting = make([]bool, numBlocks)
	// Renumber blocks so the start state's block is 0.
	ren := make([]int, numBlocks)
	for i := range ren {
		ren[i] = -1
	}
	nextID := 0
	var assign func(b int) int
	assign = func(b int) int {
		if ren[b] == -1 {
			ren[b] = nextID
			nextID++
		}
		return ren[b]
	}
	assign(part[0])
	for s := 0; s < d.numStates; s++ {
		b := assign(part[s])
		out.accepting[b] = d.accepting[s]
		for c := 0; c < k; c++ {
			out.trans[b*k+c] = assign(part[d.trans[s*k+c]])
		}
	}
	return out
}

func allSame(bs []bool) bool {
	for _, b := range bs {
		if b != bs[0] {
			return false
		}
	}
	return true
}

func appendInt(buf []byte, v int) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// complement flips acceptance; the DFA is complete so this is exact.
func (d *dfa) complement() *dfa {
	out := &dfa{
		numStates: d.numStates,
		symbols:   d.symbols,
		trans:     append([]int(nil), d.trans...),
		accepting: make([]bool, d.numStates),
	}
	for s, acc := range d.accepting {
		out.accepting[s] = !acc
	}
	return out
}

// refine re-expresses the DFA over a finer alphabet partition. classes
// must refine d.symbols (every class is contained in one of d's classes).
func (d *dfa) refine(classes []runeSet) *dfa {
	k := len(classes)
	out := &dfa{
		numStates: d.numStates,
		symbols:   classes,
		trans:     make([]int, d.numStates*k),
		accepting: append([]bool(nil), d.accepting...),
	}
	for ci, class := range classes {
		orig := d.classOf(class[0].lo)
		for s := 0; s < d.numStates; s++ {
			out.trans[s*k+ci] = d.trans[s*len(d.symbols)+orig]
		}
	}
	return out
}

// commonPartition computes a partition of Σ refining the partitions of
// both DFAs.
func commonPartition(a, b *dfa) []runeSet {
	var labels []runeSet
	labels = append(labels, a.symbols...)
	labels = append(labels, b.symbols...)
	return alphabetPartition(labels)
}

// product builds the synchronous product of two DFAs with the given
// acceptance combiner (AND for intersection, OR for union, etc.).
func product(a, b *dfa, combine func(x, y bool) bool) *dfa {
	classes := commonPartition(a, b)
	ra := a.refine(classes)
	rb := b.refine(classes)
	k := len(classes)
	type pair struct{ x, y int }
	index := map[pair]int{{0, 0}: 0}
	queue := []pair{{0, 0}}
	out := &dfa{symbols: classes}
	out.numStates = 1
	out.accepting = []bool{combine(ra.accepting[0], rb.accepting[0])}
	out.trans = make([]int, k)
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		from := index[p]
		for c := 0; c < k; c++ {
			np := pair{ra.trans[p.x*k+c], rb.trans[p.y*k+c]}
			to, ok := index[np]
			if !ok {
				to = out.numStates
				index[np] = to
				out.numStates++
				out.accepting = append(out.accepting, combine(ra.accepting[np.x], rb.accepting[np.y]))
				out.trans = append(out.trans, make([]int, k)...)
				queue = append(queue, np)
			}
			out.trans[from*k+c] = to
		}
	}
	return out
}

// isEmpty reports whether the DFA accepts no string (BFS from start).
func (d *dfa) isEmpty() bool {
	_, ok := d.witness()
	return !ok
}

// witness returns a shortest accepted string, preferring readable runes.
func (d *dfa) witness() (string, bool) {
	k := len(d.symbols)
	type entry struct {
		state int
		via   int // class index taken to reach it, -1 for start
		prev  int // index into the visit list
	}
	visited := make([]bool, d.numStates)
	list := []entry{{0, -1, -1}}
	visited[0] = true
	for i := 0; i < len(list); i++ {
		e := list[i]
		if d.accepting[e.state] {
			// Reconstruct.
			var runes []rune
			for j := i; list[j].via != -1; j = list[j].prev {
				r, _ := d.symbols[list[j].via].sample()
				runes = append(runes, r)
			}
			for x, y := 0, len(runes)-1; x < y; x, y = x+1, y-1 {
				runes[x], runes[y] = runes[y], runes[x]
			}
			return string(runes), true
		}
		for c := 0; c < k; c++ {
			to := d.trans[e.state*k+c]
			if !visited[to] {
				visited[to] = true
				list = append(list, entry{to, c, i})
			}
		}
	}
	return "", false
}

// enumerate returns up to max accepted strings in length-lexicographic
// (shortlex) order over class representatives. Used by satisfiability
// witnesses that need several distinct keys from one language.
func (d *dfa) enumerate(max int) []string {
	k := len(d.symbols)
	type entry struct {
		state int
		str   string
	}
	var out []string
	queue := []entry{{0, ""}}
	const lengthCap = 64
	for qi := 0; qi < len(queue) && len(out) < max; qi++ {
		e := queue[qi]
		if d.accepting[e.state] {
			out = append(out, e.str)
		}
		if len(e.str) >= lengthCap || len(queue) > 4096 {
			continue
		}
		for c := 0; c < k; c++ {
			to := d.trans[e.state*k+c]
			if stateCanAccept(d, to) {
				r, _ := d.symbols[c].sample()
				queue = append(queue, entry{to, e.str + string(r)})
			}
		}
	}
	return out
}

// stateCanAccept reports whether any accepting state is reachable from s.
func stateCanAccept(d *dfa, s int) bool {
	k := len(d.symbols)
	visited := make([]bool, d.numStates)
	stack := []int{s}
	visited[s] = true
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.accepting[st] {
			return true
		}
		for c := 0; c < k; c++ {
			to := d.trans[st*k+c]
			if !visited[to] {
				visited[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}
