package relang

import (
	"strings"
	"sync"
)

// Regex is a compiled regular language over Σ*. Matching is full-string:
// Match(s) reports s ∈ L(e), the semantics used by the paper for
// Pattern(e) node tests and X_e axes. Regex values are immutable and safe
// for concurrent use.
type Regex struct {
	pattern string
	ast     node
	nfa     *nfa

	once sync.Once
	min  *dfa // minimized DFA, built lazily for language operations
}

// Compile parses and compiles a pattern. See parseAST for the supported
// syntax.
func Compile(pattern string) (*Regex, error) {
	ast, err := parseAST(pattern)
	if err != nil {
		return nil, err
	}
	return fromAST(pattern, ast), nil
}

// MustCompile is Compile but panics on error; for statically known
// patterns in tests and examples.
func MustCompile(pattern string) *Regex {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// Literal returns the regex whose language is exactly {w}. It is used to
// embed the deterministic axes X_w of JNL into the non-deterministic
// framework, and never fails regardless of metacharacters in w.
func Literal(w string) *Regex {
	parts := make([]node, 0, len(w))
	for _, r := range w {
		parts = append(parts, classNode{singleRune(r)})
	}
	var ast node
	switch len(parts) {
	case 0:
		ast = epsNode{}
	case 1:
		ast = parts[0]
	default:
		ast = concatNode{parts}
	}
	return fromAST(escapeLiteral(w), ast)
}

// Any returns the regex for Σ* (matches every string).
func Any() *Regex {
	return fromAST(".*", starNode{classNode{anyRune}})
}

// None returns the regex for the empty language ∅.
func None() *Regex { return fromAST("∅", emptyNode{}) }

func fromAST(pattern string, ast node) *Regex {
	return &Regex{pattern: pattern, ast: ast, nfa: buildNFA(ast)}
}

func escapeLiteral(w string) string {
	var sb strings.Builder
	for _, r := range w {
		if strings.ContainsRune(`\.[](){}|*+?^$`, r) {
			sb.WriteByte('\\')
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// String returns the source pattern.
func (re *Regex) String() string { return re.pattern }

// Match reports whether s is in the language (full-string membership).
// It runs the NFA directly in O(|nfa|·|s|) without determinizing, so a
// first Match never pays an exponential subset-construction cost.
func (re *Regex) Match(s string) bool { return re.nfa.match(s) }

// dfaMin returns the lazily computed minimal DFA.
func (re *Regex) dfaMin() *dfa {
	re.once.Do(func() {
		re.min = determinize(re.nfa).minimize()
	})
	return re.min
}

// MatchDFA matches using the compiled minimal DFA: O(|s|) per call after
// a one-time determinization. The ablation benchmarks compare this
// against NFA simulation.
func (re *Regex) MatchDFA(s string) bool { return re.dfaMin().match(s) }

// IsEmpty reports L(e) = ∅.
func (re *Regex) IsEmpty() bool { return re.dfaMin().isEmpty() }

// IsUniversal reports L(e) = Σ*.
func (re *Regex) IsUniversal() bool { return re.dfaMin().complement().isEmpty() }

// MatchesEmptyString reports ε ∈ L(e).
func (re *Regex) MatchesEmptyString() bool { return re.Match("") }

// Witness returns a shortest string in the language, or false if empty.
func (re *Regex) Witness() (string, bool) { return re.dfaMin().witness() }

// Enumerate returns up to max distinct strings of the language in
// shortlex order (shortest first).
func (re *Regex) Enumerate(max int) []string { return re.dfaMin().enumerate(max) }

// Complement returns a regex for Σ* \ L(e).
func (re *Regex) Complement() *Regex {
	return wrapDFA("¬("+re.pattern+")", re.dfaMin().complement())
}

// Intersect returns a regex for L(e) ∩ L(f).
func (re *Regex) Intersect(other *Regex) *Regex {
	d := product(re.dfaMin(), other.dfaMin(), func(x, y bool) bool { return x && y })
	return wrapDFA("("+re.pattern+")∩("+other.pattern+")", d.minimize())
}

// Union returns a regex for L(e) ∪ L(f).
func (re *Regex) Union(other *Regex) *Regex {
	d := product(re.dfaMin(), other.dfaMin(), func(x, y bool) bool { return x || y })
	return wrapDFA("("+re.pattern+")|("+other.pattern+")", d.minimize())
}

// Minus returns a regex for L(e) \ L(f).
func (re *Regex) Minus(other *Regex) *Regex {
	d := product(re.dfaMin(), other.dfaMin(), func(x, y bool) bool { return x && !y })
	return wrapDFA("("+re.pattern+")\\("+other.pattern+")", d.minimize())
}

// Includes reports L(other) ⊆ L(e).
func (re *Regex) Includes(other *Regex) bool {
	return product(other.dfaMin(), re.dfaMin(), func(x, y bool) bool { return x && !y }).isEmpty()
}

// Equiv reports L(e) = L(f).
func (re *Regex) Equiv(other *Regex) bool {
	return re.Includes(other) && other.Includes(re)
}

// NumDFAStates returns the number of states of the minimal DFA; exposed
// for tests and complexity experiments.
func (re *Regex) NumDFAStates() int { return re.dfaMin().numStates }

// wrapDFA builds a Regex directly over a DFA produced by a language
// operation. Matching uses the DFA; there is no NFA re-derivation.
func wrapDFA(pattern string, d *dfa) *Regex {
	re := &Regex{pattern: pattern, nfa: dfaToNFA(d)}
	re.once.Do(func() {})
	re.min = d
	return re
}

// dfaToNFA views a DFA as an NFA (needed so Match works uniformly).
func dfaToNFA(d *dfa) *nfa {
	a := &nfa{}
	for i := 0; i < d.numStates; i++ {
		a.newState()
	}
	accept := a.newState()
	k := len(d.symbols)
	for s := 0; s < d.numStates; s++ {
		// Group targets to merge classes into larger rune sets.
		byTarget := map[int][]runeRange{}
		for c := 0; c < k; c++ {
			to := d.trans[s*k+c]
			byTarget[to] = append(byTarget[to], d.symbols[c]...)
		}
		for to, ranges := range byTarget {
			a.addEdge(s, normalize(ranges), to)
		}
		if d.accepting[s] {
			a.addEps(s, accept)
		}
	}
	a.start = 0
	a.accept = accept
	return a
}
