package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Point is one grid cell: the per-run knobs an experiments manifest
// can set. Zero fields inherit from the manifest defaults, then from
// the Config passed to RunGrid.
type Point struct {
	Workload    string   `json:"workload,omitempty"`
	Concurrency int      `json:"concurrency,omitempty"`
	Rate        float64  `json:"rate,omitempty"`
	Duration    Duration `json:"duration,omitempty"`
	Preload     int      `json:"preload,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
}

// Grid is the experiments manifest: shared defaults plus the list of
// workload × concurrency points to sweep.
type Grid struct {
	Defaults Point   `json:"defaults"`
	Points   []Point `json:"points"`
}

// Duration is a time.Duration that unmarshals from JSON strings like
// "30s", so manifests stay readable.
type Duration time.Duration

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("load: duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	*d = Duration(v)
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// ParseGrid reads an experiments manifest.
func ParseGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("load: parse grid manifest: %w", err)
	}
	if len(g.Points) == 0 {
		return nil, fmt.Errorf("load: grid manifest has no points")
	}
	return &g, nil
}

// apply overlays p on cfg: set fields win, unset fields keep cfg's.
func (p Point) apply(cfg Config) Config {
	if p.Workload != "" {
		cfg.Workload = p.Workload
	}
	if p.Concurrency > 0 {
		cfg.Concurrency = p.Concurrency
	}
	if p.Rate > 0 {
		cfg.Rate = p.Rate
	}
	if p.Duration > 0 {
		cfg.Duration = time.Duration(p.Duration)
	}
	if p.Preload > 0 {
		cfg.Preload = p.Preload
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return cfg
}

// RunGrid sweeps every point sequentially against base.Target and
// writes one combined CSV table to csvw (header once, data rows per
// run). logw, when non-nil, receives a progress line and the
// human-readable report per point. Points run in manifest order so a
// results table always reads in sweep order; a point's failure aborts
// the sweep, since later points would measure a target in an unknown
// state.
func RunGrid(ctx context.Context, base Config, g *Grid, csvw, logw io.Writer) ([]*Summary, error) {
	summaries := make([]*Summary, 0, len(g.Points))
	for i, p := range g.Points {
		cfg := p.apply(g.Defaults.apply(base))
		if logw != nil {
			fmt.Fprintf(logw, "[%d/%d] workload=%s concurrency=%d rate=%g duration=%s\n",
				i+1, len(g.Points), cfg.Workload, cfg.Concurrency, cfg.Rate, cfg.Duration)
		}
		s, err := Run(ctx, cfg)
		if err != nil {
			return summaries, fmt.Errorf("load: grid point %d: %w", i+1, err)
		}
		if logw != nil {
			if err := s.WriteText(logw); err != nil {
				return summaries, err
			}
		}
		if err := s.WriteCSV(csvw, i == 0); err != nil {
			return summaries, err
		}
		summaries = append(summaries, s)
	}
	return summaries, nil
}
