// Package load is the HTTP load generator behind cmd/jsonload: it
// drives a running jsonstored target with a mixed document workload
// and reports latency percentiles and throughput per operation kind.
//
// Two driving modes:
//
//   - Closed loop (Rate == 0): each of Concurrency workers issues its
//     next request as soon as the previous one completes. Throughput
//     is whatever the server sustains; latency is pure service time.
//   - Open loop (Rate > 0): a pacer schedules arrivals at the target
//     rate independent of the server, and latency is measured from the
//     *scheduled* arrival, not the send. A server that falls behind
//     accumulates queueing delay in the numbers instead of silently
//     slowing the generator down (the coordinated-omission trap).
//
// Workloads are weighted mixes of four operations — get, put, bulk,
// query — selected per request from a deterministic per-worker RNG, so
// a (seed, workload, concurrency) triple replays the same request
// sequence against any target.
package load

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jsonlogic/internal/gen"
)

// Config parameterizes one load run.
type Config struct {
	// Target is the daemon base URL, e.g. http://localhost:8080.
	Target string
	// Workload is a profile name (see Profiles) or a custom weighted
	// mix like "get=70,put=20,query=10".
	Workload string
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Duration bounds the measured window (default 10s).
	Duration time.Duration
	// Rate is the target arrival rate in ops/sec across all workers;
	// 0 runs closed-loop.
	Rate float64
	// Preload PUTs this many documents before the measured window so
	// reads and queries have something to hit (default 1000).
	Preload int
	// Keyspace is the document-id range ops draw from; 0 derives it
	// from Preload. Puts overwrite within the keyspace, keeping the
	// collection size steady during sustained runs.
	Keyspace int
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// BulkLines is the NDJSON document count per bulk request
	// (default 16).
	BulkLines int
	// SlowestK is how many of the slowest requests to report by
	// X-Request-ID in the summary (default 5; negative disables).
	// Every measured request carries a deterministic id like
	// "w3-000127" (worker 3, request 127), which the daemon echoes
	// back and records in its slow-query trace ring — so a slow
	// summary entry can be looked up in GET /debug/queries by id.
	SlowestK int
	// Doc shapes the generated documents; zero value uses a compact
	// 3-level document.
	Doc gen.DocOptions
}

func (c *Config) defaults() {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Preload < 0 {
		c.Preload = 0
	}
	if c.Keyspace <= 0 {
		c.Keyspace = c.Preload
		if c.Keyspace < 1000 {
			c.Keyspace = 1000
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.BulkLines <= 0 {
		c.BulkLines = 16
	}
	if c.SlowestK == 0 {
		c.SlowestK = 5
	}
	if c.Doc == (gen.DocOptions{}) {
		c.Doc = gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 30, ValueRange: 100}
	}
	if c.Workload == "" {
		c.Workload = "mixed"
	}
}

// Operation kinds, indexed into per-kind recorders.
const (
	opGet = iota
	opPut
	opBulk
	opQuery
	numOps
)

var opNames = [numOps]string{"get", "put", "bulk", "query"}

// Mix is a weighted operation blend; weights are relative, not
// required to sum to 100.
type Mix struct {
	Get, Put, Bulk, Query int
}

func (m Mix) total() int { return m.Get + m.Put + m.Bulk + m.Query }

// pick maps a uniform draw in [0, total) to an operation.
func (m Mix) pick(n int) int {
	if n < m.Get {
		return opGet
	}
	n -= m.Get
	if n < m.Put {
		return opPut
	}
	n -= m.Put
	if n < m.Bulk {
		return opBulk
	}
	return opQuery
}

// Profiles are the named workload mixes. "mixed" exercises every
// route; the skewed profiles isolate the read, write and query paths.
var Profiles = map[string]Mix{
	"read-heavy":  {Get: 85, Put: 10, Query: 5},
	"write-heavy": {Get: 20, Put: 70, Bulk: 10},
	"query-heavy": {Get: 20, Put: 10, Query: 70},
	"mixed":       {Get: 40, Put: 30, Bulk: 10, Query: 20},
	"bulk":        {Bulk: 100},
}

// ParseWorkload resolves a profile name or a custom "op=weight" list.
func ParseWorkload(s string) (Mix, error) {
	if m, ok := Profiles[s]; ok {
		return m, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: workload %q: want a profile name (%s) or op=weight pairs", s, profileNames())
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: workload %q: bad weight %q", s, v)
		}
		switch k {
		case "get":
			m.Get = w
		case "put":
			m.Put = w
		case "bulk":
			m.Bulk = w
		case "query":
			m.Query = w
		default:
			return Mix{}, fmt.Errorf("load: workload %q: unknown op %q (want get, put, bulk or query)", s, k)
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("load: workload %q has zero total weight", s)
	}
	return m, nil
}

func profileNames() string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// worker owns one goroutine's RNG, scratch buffers and samples, so
// the hot loop shares nothing with its siblings.
type worker struct {
	cfg      *Config
	mix      Mix
	client   *http.Client
	rng      *rand.Rand
	idx      int
	seq      uint64
	sb       strings.Builder
	rbuf     []byte
	samples  [numOps][]float64 // latency in seconds
	errs     [numOps]uint64
	timeouts uint64 // requests cut off by the client's own Timeout
	codes    map[int]uint64
	slowest  []SlowRequest // descending by Ms, at most cfg.SlowestK
}

// Run executes one load run and returns its summary. The context
// cancels the run early; whatever was measured so far is summarized.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	cfg.defaults()
	mix, err := ParseWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	transport := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: cfg.Timeout}

	workers := make([]*worker, cfg.Concurrency)
	for i := range workers {
		workers[i] = &worker{
			cfg:    &cfg,
			mix:    mix,
			client: client,
			idx:    i,
			// Distinct stream per worker; +1 keeps worker 0 off the
			// preloader's seed.
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
			rbuf:  make([]byte, 32<<10),
			codes: make(map[int]uint64),
		}
	}

	if err := preload(ctx, &cfg, client); err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Open loop: one pacer feeds scheduled arrival times to every
	// worker. The channel buffer absorbs bursts; when the server falls
	// behind, scheduled times lag wall time and the backlog shows up
	// as latency, which is the point.
	var arrivals chan time.Time
	if cfg.Rate > 0 {
		arrivals = make(chan time.Time, 4*cfg.Concurrency)
		go pace(runCtx, cfg.Rate, arrivals)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(runCtx, arrivals)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return summarize(&cfg, workers, elapsed), nil
}

// pace emits one scheduled arrival per 1/rate seconds until ctx ends.
func pace(ctx context.Context, rate float64, out chan<- time.Time) {
	defer close(out)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	for n := int64(0); ; n++ {
		next := start.Add(time.Duration(n) * interval)
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
		}
		select {
		case <-ctx.Done():
			return
		case out <- next:
		}
	}
}

func (w *worker) loop(ctx context.Context, arrivals <-chan time.Time) {
	for {
		var scheduled time.Time
		if arrivals != nil {
			var ok bool
			select {
			case <-ctx.Done():
				return
			case scheduled, ok = <-arrivals:
				if !ok {
					return
				}
			}
		} else {
			if ctx.Err() != nil {
				return
			}
			scheduled = time.Now()
		}
		op := w.mix.pick(w.rng.Intn(w.mix.total()))
		// Deterministic per-request id, sent as X-Request-ID and echoed
		// by the daemon: a slow entry in the summary can be cross-
		// referenced against the server's /debug/queries ring.
		w.seq++
		reqID := fmt.Sprintf("w%d-%06d", w.idx, w.seq)
		code, err := w.do(ctx, op, reqID)
		lat := time.Since(scheduled).Seconds()
		if err != nil {
			if ctx.Err() != nil {
				return // cancellation mid-request is not a server error
			}
			if isClientTimeout(err) {
				// The client's own per-request Timeout fired while the run
				// was still live: the server was too slow for this client,
				// which the summary reports separately from transport
				// errors — it is the client-side view of a 504.
				w.timeouts++
			}
			w.errs[op]++
			continue
		}
		w.codes[code]++
		if code == http.StatusTooManyRequests {
			// Shed by admission control before any work: not a latency
			// sample (nothing was measured but the rejection) and not an
			// error (the server is protecting itself, as configured). The
			// status-code breakdown carries the count.
			continue
		}
		if code >= 500 {
			w.errs[op]++
			continue
		}
		w.samples[op] = append(w.samples[op], lat)
		w.noteSlow(reqID, op, lat)
	}
}

// isClientTimeout reports whether a request failed on the client's
// own Timeout (http.Client.Timeout or a per-request deadline) rather
// than a transport fault; url.Error wraps both shapes.
func isClientTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || os.IsTimeout(err) {
		return true
	}
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// SlowRequest identifies one of the slowest measured requests.
type SlowRequest struct {
	ID string  `json:"id"`
	Op string  `json:"op"`
	Ms float64 `json:"ms"`
}

// noteSlow keeps the worker's top-K latencies in descending order so
// the summary can name the slowest request ids of the whole run.
func (w *worker) noteSlow(id string, op int, lat float64) {
	k := w.cfg.SlowestK
	if k <= 0 {
		return
	}
	ms := lat * 1e3
	if len(w.slowest) == k && ms <= w.slowest[k-1].Ms {
		return
	}
	i := sort.Search(len(w.slowest), func(i int) bool { return w.slowest[i].Ms < ms })
	w.slowest = append(w.slowest, SlowRequest{})
	copy(w.slowest[i+1:], w.slowest[i:])
	w.slowest[i] = SlowRequest{ID: id, Op: opNames[op], Ms: ms}
	if len(w.slowest) > k {
		w.slowest = w.slowest[:k]
	}
}

// do issues one operation and returns the HTTP status.
func (w *worker) do(ctx context.Context, op int, reqID string) (int, error) {
	switch op {
	case opGet:
		return w.request(ctx, "GET", w.docURL(), "", reqID)
	case opPut:
		w.sb.Reset()
		w.sb.WriteString(gen.Document(w.rng, w.cfg.Doc).String())
		return w.request(ctx, "PUT", w.docURL(), w.sb.String(), reqID)
	case opBulk:
		w.sb.Reset()
		for i := 0; i < w.cfg.BulkLines; i++ {
			w.sb.WriteString(gen.Document(w.rng, w.cfg.Doc).String())
			w.sb.WriteByte('\n')
		}
		return w.request(ctx, "POST", w.cfg.Target+"/bulk", w.sb.String(), reqID)
	default:
		// Point query on the generated key/value space; roughly half
		// are negated so both index and scan paths stay warm.
		k := w.rng.Intn(w.cfg.Doc.Keys)
		v := w.rng.Intn(w.cfg.Doc.ValueRange)
		q := fmt.Sprintf(`{\"k%d\":%d}`, k, v)
		if w.rng.Intn(2) == 0 {
			q = fmt.Sprintf(`{\"k%d\":{\"$ne\":%d}}`, k, v)
		}
		body := fmt.Sprintf(`{"lang":"mongo","query":"%s"}`, q)
		return w.request(ctx, "POST", w.cfg.Target+"/query", body, reqID)
	}
}

func (w *worker) docURL() string {
	return fmt.Sprintf("%s/docs/load-%d", w.cfg.Target, w.rng.Intn(w.cfg.Keyspace))
}

func (w *worker) request(ctx context.Context, method, url, body, reqID string) (int, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reused; the response body itself is
	// not part of the measurement contract.
	for {
		if _, err := resp.Body.Read(w.rbuf); err != nil {
			break
		}
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// preload PUTs cfg.Preload documents (ids load-0 … load-N-1) with
// Concurrency workers before the measured window.
func preload(ctx context.Context, cfg *Config, client *http.Client) error {
	if cfg.Preload == 0 {
		return nil
	}
	ids := make(chan int)
	errc := make(chan error, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed - int64(i) - 1))
			w := &worker{cfg: cfg, client: client, rng: rng, rbuf: make([]byte, 32<<10)}
			for id := range ids {
				body := gen.Document(rng, cfg.Doc).String()
				url := fmt.Sprintf("%s/docs/load-%d", cfg.Target, id)
				// Preload is outside the measured window: no request id.
				code, err := w.request(ctx, "PUT", url, body, "")
				if err != nil {
					errc <- fmt.Errorf("load: preload: %w", err)
					return
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("load: preload: PUT %s: status %d", url, code)
					return
				}
			}
		}(i)
	}
	for id := 0; id < cfg.Preload; id++ {
		select {
		case <-ctx.Done():
			break
		case ids <- id:
			continue
		}
		break
	}
	close(ids)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return ctx.Err()
	}
}
