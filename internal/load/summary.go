package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// OpStats summarizes one operation kind (or the run total). Latencies
// are milliseconds; percentiles are exact over every recorded sample,
// not histogram-bucket approximations.
type OpStats struct {
	Op         string  `json:"op"`
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors"`
	Throughput float64 `json:"throughput_ops_s"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// Summary is the result of one load run.
type Summary struct {
	Target      string            `json:"target"`
	Workload    string            `json:"workload"`
	Concurrency int               `json:"concurrency"`
	RateTarget  float64           `json:"rate_target_ops_s,omitempty"`
	Seed        int64             `json:"seed"`
	DurationS   float64           `json:"duration_s"`
	Total       OpStats           `json:"total"`
	Ops         []OpStats         `json:"ops"`
	Codes       map[string]uint64 `json:"status_codes"`
	// ClientTimeouts counts requests the generator's own per-request
	// Timeout cut off — the client-side view of a too-slow server,
	// reported separately from transport errors.
	ClientTimeouts uint64 `json:"client_timeouts,omitempty"`
	// Slowest names the slowest K measured requests by the
	// X-Request-ID the generator sent (and the daemon echoed), so an
	// outlier in the latency tail can be looked up in the server's
	// GET /debug/queries trace ring.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

func summarize(cfg *Config, workers []*worker, elapsed time.Duration) *Summary {
	s := &Summary{
		Target:      cfg.Target,
		Workload:    cfg.Workload,
		Concurrency: cfg.Concurrency,
		RateTarget:  cfg.Rate,
		Seed:        cfg.Seed,
		DurationS:   elapsed.Seconds(),
		Codes:       make(map[string]uint64),
	}
	var all []float64
	var allErrs uint64
	for op := 0; op < numOps; op++ {
		var samples []float64
		var errs uint64
		for _, w := range workers {
			samples = append(samples, w.samples[op]...)
			errs += w.errs[op]
		}
		if len(samples) == 0 && errs == 0 {
			continue
		}
		s.Ops = append(s.Ops, opStats(opNames[op], samples, errs, elapsed))
		all = append(all, samples...)
		allErrs += errs
	}
	for _, w := range workers {
		for code, n := range w.codes {
			s.Codes[fmt.Sprint(code)] += n
		}
		s.ClientTimeouts += w.timeouts
		s.Slowest = append(s.Slowest, w.slowest...)
	}
	sort.Slice(s.Slowest, func(i, j int) bool { return s.Slowest[i].Ms > s.Slowest[j].Ms })
	if cfg.SlowestK > 0 && len(s.Slowest) > cfg.SlowestK {
		s.Slowest = s.Slowest[:cfg.SlowestK]
	}
	s.Total = opStats("total", all, allErrs, elapsed)
	return s
}

func opStats(name string, samples []float64, errs uint64, elapsed time.Duration) OpStats {
	st := OpStats{Op: name, Count: uint64(len(samples)), Errors: errs}
	if elapsed > 0 {
		st.Throughput = float64(len(samples)) / elapsed.Seconds()
	}
	if len(samples) == 0 {
		return st
	}
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	ms := 1e3
	st.MeanMs = sum / float64(len(samples)) * ms
	st.P50Ms = percentile(samples, 0.50) * ms
	st.P90Ms = percentile(samples, 0.90) * ms
	st.P99Ms = percentile(samples, 0.99) * ms
	st.MaxMs = samples[len(samples)-1] * ms
	return st
}

// percentile over sorted samples: the nearest-rank definition, so
// p100 is the max and p50 of two samples is the lower one.
func percentile(sorted []float64, q float64) float64 {
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CSVHeader is the column set WriteCSV emits, one row per operation
// kind plus a "total" row; grid runs concatenate these tables.
const CSVHeader = "workload,concurrency,rate_target,duration_s,op,count,errors,throughput_ops_s,mean_ms,p50_ms,p90_ms,p99_ms,max_ms,shed_429,unavailable_503,timeout_504,client_timeouts"

// WriteCSV writes the summary as a CSV table. With header false only
// data rows are written, so successive runs can append to one file.
func (s *Summary) WriteCSV(w io.Writer, header bool) error {
	if header {
		if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
			return err
		}
	}
	rows := append([]OpStats{}, s.Ops...)
	rows = append(rows, s.Total)
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%s,%d,%g,%.3f,%s,%d,%d,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%d,%d\n",
			s.Workload, s.Concurrency, s.RateTarget, s.DurationS,
			r.Op, r.Count, r.Errors, r.Throughput, r.MeanMs, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs,
			s.Codes["429"], s.Codes["503"], s.Codes["504"], s.ClientTimeouts)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes the human-readable run report.
func (s *Summary) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "target %s  workload %s  concurrency %d", s.Target, s.Workload, s.Concurrency); err != nil {
		return err
	}
	if s.RateTarget > 0 {
		fmt.Fprintf(w, "  rate %g/s", s.RateTarget)
	}
	fmt.Fprintf(w, "  duration %.1fs\n", s.DurationS)
	fmt.Fprintf(w, "%-7s %10s %7s %12s %10s %10s %10s %10s %10s\n",
		"op", "count", "errors", "ops/s", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms")
	rows := append([]OpStats{}, s.Ops...)
	rows = append(rows, s.Total)
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-7s %10d %7d %12.1f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			r.Op, r.Count, r.Errors, r.Throughput, r.MeanMs, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs); err != nil {
			return err
		}
	}
	if shed, unavail, timeout := s.Codes["429"], s.Codes["503"], s.Codes["504"]; shed+unavail+timeout+s.ClientTimeouts > 0 {
		fmt.Fprintf(w, "backpressure: 429 shed %d  503 unavailable %d  504 query timeout %d  client timeouts %d\n",
			shed, unavail, timeout, s.ClientTimeouts)
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "slowest requests (X-Request-ID, see GET /debug/queries on the target):\n")
		for _, r := range s.Slowest {
			if _, err := fmt.Fprintf(w, "  %-12s %-7s %10.3f ms\n", r.ID, r.Op, r.Ms); err != nil {
				return err
			}
		}
	}
	return nil
}
