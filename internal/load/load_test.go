package load

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"jsonlogic/internal/httpapi"
	"jsonlogic/internal/store"
	"jsonlogic/internal/trace"
)

// newDaemon assembles the real daemon handler in-process, so the
// generator self-test exercises the same code paths as a TCP run. The
// slow-query threshold is forced to 0: every query takes the full
// trace-capture path (recorder, ring, slog) while the load runs, so
// the smoke target doubles as a tracing-under-load test.
func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	st := store.New(store.Options{Shards: 4})
	t.Cleanup(func() { st.Close() })
	tc := trace.New(trace.Options{SlowQuery: 0, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(httpapi.NewHandler(st, httpapi.Options{Tracer: tc}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunMixedWorkload is the jsonload self-test the smoke target
// runs: a short closed-loop mixed run must report nonzero throughput,
// zero errors, ordered percentiles and a well-formed JSON/CSV summary.
func TestRunMixedWorkload(t *testing.T) {
	ts := newDaemon(t)
	s, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Workload:    "mixed",
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Preload:     50,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Total.Count == 0 || s.Total.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", s.Total)
	}
	if s.Total.Errors != 0 {
		t.Fatalf("errors against healthy in-process daemon: %+v codes=%v", s.Total, s.Codes)
	}
	if s.Total.P50Ms <= 0 || s.Total.P50Ms > s.Total.P90Ms || s.Total.P90Ms > s.Total.P99Ms || s.Total.P99Ms > s.Total.MaxMs {
		t.Fatalf("percentiles out of order: %+v", s.Total)
	}
	if len(s.Ops) == 0 {
		t.Fatal("no per-op stats")
	}
	for _, op := range s.Ops {
		if op.Count == 0 {
			t.Errorf("op %s never ran in a mixed workload", op.Op)
		}
	}
	if s.Codes["200"] == 0 {
		t.Fatalf("no 200s recorded: %v", s.Codes)
	}

	// The summary names the slowest K request ids, descending, each a
	// well-formed worker-sequence id the daemon saw as X-Request-ID.
	if len(s.Slowest) != 5 {
		t.Fatalf("slowest has %d entries, want 5 (default K)", len(s.Slowest))
	}
	idPat := regexp.MustCompile(`^w\d+-\d{6}$`)
	for i, r := range s.Slowest {
		if !idPat.MatchString(r.ID) {
			t.Errorf("slowest[%d] id %q is not a worker-sequence id", i, r.ID)
		}
		if r.Ms <= 0 || r.Op == "" {
			t.Errorf("slowest[%d] malformed: %+v", i, r)
		}
		if i > 0 && r.Ms > s.Slowest[i-1].Ms {
			t.Errorf("slowest not descending at %d: %v then %v", i, s.Slowest[i-1].Ms, r.Ms)
		}
	}
	if s.Slowest[0].Ms != s.Total.MaxMs {
		t.Errorf("slowest[0] = %vms but max_ms = %v", s.Slowest[0].Ms, s.Total.MaxMs)
	}

	// JSON summary round-trips.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("summary JSON does not round-trip: %v", err)
	}
	if back.Total.Count != s.Total.Count || back.Workload != "mixed" {
		t.Fatalf("round-trip mismatch: %+v", back.Total)
	}

	// CSV: header plus one row per op kind plus the total row.
	buf.Reset()
	if err := s.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("csv header = %q", lines[0])
	}
	if want := 1 + len(s.Ops) + 1; len(lines) != want {
		t.Fatalf("csv has %d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	if !strings.Contains(lines[len(lines)-1], ",total,") {
		t.Fatalf("last csv row is not the total: %q", lines[len(lines)-1])
	}
}

// TestRunOpenLoop drives the pacer: the achieved rate must track a
// target the in-process server can trivially sustain.
func TestRunOpenLoop(t *testing.T) {
	ts := newDaemon(t)
	s, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Workload:    "read-heavy",
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		Rate:        200,
		Preload:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Total.Errors != 0 {
		t.Fatalf("errors: %+v", s.Total)
	}
	// ~100 arrivals scheduled; allow generous slop for CI jitter but
	// reject a pacer that free-runs (closed-loop would do thousands).
	if s.Total.Count < 50 || s.Total.Count > 150 {
		t.Fatalf("open-loop count = %d, want ≈100 at 200/s over 0.5s", s.Total.Count)
	}
}

// TestRunReproducible pins that a (seed, workload) pair replays the
// same operation sequence: same op counts, target state independent.
func TestRunReproducible(t *testing.T) {
	counts := func() map[string]uint64 {
		ts := newDaemon(t)
		s, err := Run(context.Background(), Config{
			Target:      ts.URL,
			Workload:    "mixed",
			Concurrency: 2,
			Duration:    200 * time.Millisecond,
			Rate:        100, // fixed arrivals, so both runs do the same work
			Preload:     10,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]uint64)
		for _, op := range s.Ops {
			m[op.Op] = op.Count
		}
		return m
	}
	a, b := counts(), counts()
	var total uint64
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("empty run")
	}
	// The op mix is drawn per-worker from the seeded RNG; identical
	// arrival counts must give identical mixes.
	for op, n := range a {
		if b[op] != n {
			t.Logf("run A: %v", a)
			t.Logf("run B: %v", b)
			t.Skipf("op counts differ (%s: %d vs %d): arrival-count jitter under CI load", op, n, b[op])
		}
	}
}

// TestParseWorkload covers profile lookup and the custom mix syntax.
func TestParseWorkload(t *testing.T) {
	if _, err := ParseWorkload("mixed"); err != nil {
		t.Fatal(err)
	}
	m, err := ParseWorkload("get=70, put=30")
	if err != nil {
		t.Fatal(err)
	}
	if m.Get != 70 || m.Put != 30 || m.Bulk != 0 || m.Query != 0 {
		t.Fatalf("custom mix = %+v", m)
	}
	for _, bad := range []string{"", "nope", "get", "get=x", "get=-1", "jump=50", "get=0,put=0"} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", bad)
		}
	}
}

// TestMixPick checks the weighted selector hits every op and respects
// zero weights.
func TestMixPick(t *testing.T) {
	m := Mix{Get: 1, Put: 1, Bulk: 1, Query: 1}
	seen := map[int]bool{}
	for n := 0; n < m.total(); n++ {
		seen[m.pick(n)] = true
	}
	if len(seen) != numOps {
		t.Fatalf("pick covered %d ops, want %d", len(seen), numOps)
	}
	m = Mix{Get: 2, Query: 3}
	for n := 0; n < m.total(); n++ {
		if op := m.pick(n); op == opPut || op == opBulk {
			t.Fatalf("pick(%d) chose zero-weight op %s", n, opNames[op])
		}
	}
}

// TestGrid parses a manifest and sweeps it against the in-process
// daemon, checking defaults overlay and the combined CSV shape.
func TestGrid(t *testing.T) {
	manifest := `{
	  "defaults": {"duration": "150ms", "preload": 10, "seed": 3},
	  "points": [
	    {"workload": "read-heavy", "concurrency": 1},
	    {"workload": "read-heavy", "concurrency": 2},
	    {"workload": "write-heavy", "concurrency": 2, "duration": "100ms"}
	  ]
	}`
	g, err := ParseGrid(strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	ts := newDaemon(t)
	var csv bytes.Buffer
	sums, err := RunGrid(context.Background(), Config{Target: ts.URL}, g, &csv, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0].Concurrency != 1 || sums[1].Concurrency != 2 {
		t.Fatalf("concurrency sweep not applied: %d, %d", sums[0].Concurrency, sums[1].Concurrency)
	}
	if sums[2].Workload != "write-heavy" {
		t.Fatalf("workload not applied: %s", sums[2].Workload)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("grid csv header = %q", lines[0])
	}
	if n := strings.Count(csv.String(), CSVHeader); n != 1 {
		t.Fatalf("grid csv repeats the header %d times", n)
	}
	for _, s := range sums {
		if s.Total.Count == 0 {
			t.Fatalf("empty grid point: %+v", s)
		}
	}

	for _, bad := range []string{`{}`, `{"points":[]}`, `{"points":[{"nope":1}]}`, `{"defaults":{"duration":"xx"},"points":[{}]}`} {
		if _, err := ParseGrid(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseGrid(%s) accepted", bad)
		}
	}
}
