package jsonpath

import (
	"testing"

	"jsonlogic/internal/jsonval"
)

const store = `{
	"store": {
		"book": [
			{"category":"fiction","title":"Sayings","price":8},
			{"category":"fiction","title":"Moby","price":9},
			{"category":"reference","title":"Lore","price":23}
		],
		"bicycle": {"color":"red","price":20}
	},
	"expensive": 10
}`

func selectStrings(t *testing.T, path string) []string {
	t.Helper()
	p, err := Compile(path)
	if err != nil {
		t.Fatalf("Compile(%s): %v", path, err)
	}
	var out []string
	for _, v := range p.Select(jsonval.MustParse(store)) {
		out = append(out, v.String())
	}
	return out
}

func TestSelect(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		{`$.expensive`, []string{`10`}},
		{`$.store.bicycle.color`, []string{`"red"`}},
		{`$.store.book[0].title`, []string{`"Sayings"`}},
		{`$.store.book[-1].title`, []string{`"Lore"`}},
		{`$['store']['bicycle']['price']`, []string{`20`}},
		{`$.store.book[*].title`, []string{`"Sayings"`, `"Moby"`, `"Lore"`}},
		{`$.store.book[0:2].title`, []string{`"Sayings"`, `"Moby"`}},
		{`$.store.book[1:].title`, []string{`"Moby"`, `"Lore"`}},
		{
			// Object members are unordered in the model (children are
			// key-sorted), so bicycle precedes book.
			`$..price`, []string{`20`, `8`, `9`, `23`}},
		{`$..book[0].category`, []string{`"fiction"`}},
		{`$.store.*.price`, []string{`20`}}, // only bicycle has a direct price
		{`$.missing`, nil},
		{`$.store.book[9]`, nil},
		{`$.store.book[?(@.price == 9)].title`, []string{`"Moby"`}},
		{`$.store.book[?(@.price != 9)].title`, []string{`"Sayings"`, `"Lore"`}},
		{`$.store.book[?(@.price < 9)].title`, []string{`"Sayings"`}},
		{`$.store.book[?(@.price <= 9)].title`, []string{`"Sayings"`, `"Moby"`}},
		{`$.store.book[?(@.price > 10)].title`, []string{`"Lore"`}},
		{`$.store.book[?(@.price >= 9)].title`, []string{`"Moby"`, `"Lore"`}},
		{`$.store.book[?(@.category == 'fiction')].title`, []string{`"Sayings"`, `"Moby"`}},
		{`$.store.book[?(@.title)].price`, []string{`8`, `9`, `23`}},
		{`$..*`, nil}, // checked separately below (count only)
	}
	for _, tc := range cases {
		if tc.path == `$..*` {
			continue
		}
		got := selectStrings(t, tc.path)
		if !equalStrings(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.path, got, tc.want)
		}
	}
	// $..* selects every node except the root.
	doc := jsonval.MustParse(store)
	all := MustCompile(`$..*`).Select(doc)
	if len(all) != doc.Size()-1 {
		t.Errorf("$..* selected %d nodes, want %d", len(all), doc.Size()-1)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``, `store`, `$.`, `$[`, `$[]`, `$['a`, `$[1:0]`, `$[?(`,
		`$[?(@.a ~ 1)]`, `$[?(@.a ==)]`, `$[-1:2]`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestRootOnly(t *testing.T) {
	p := MustCompile(`$`)
	got := p.Select(jsonval.MustParse(`{"a":1}`))
	if len(got) != 1 || got[0].String() != `{"a":1}` {
		t.Errorf("$ = %v", got)
	}
}

func TestWildcardOverArraysAndObjects(t *testing.T) {
	p := MustCompile(`$.*`)
	if got := p.Select(jsonval.MustParse(`[1,2]`)); len(got) != 2 {
		t.Errorf("wildcard over array: %v", got)
	}
	if got := p.Select(jsonval.MustParse(`{"a":1,"b":2}`)); len(got) != 2 {
		t.Errorf("wildcard over object: %v", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecursiveDescentAndFilters(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		{`$..price`, []string{`8`, `9`, `23`, `20`}},
		{`$.store.book[*].title`, []string{`"Sayings"`, `"Moby"`, `"Lore"`}},
		{`$.store.book[1:3].title`, []string{`"Moby"`, `"Lore"`}},
		{`$.store.book[1:].price`, []string{`9`, `23`}},
		{`$.store.book[?(@.price > 10)].title`, []string{`"Lore"`}},
		{`$.store.book[?(@.price <= 9)].title`, []string{`"Sayings"`, `"Moby"`}},
		{`$.store.book[?(@.category == "fiction")].price`, []string{`8`, `9`}},
		{`$.store.book[?(@.category != "fiction")].title`, []string{`"Lore"`}},
		{`$..book[0].category`, []string{`"fiction"`}},
		{`$..bicycle.*`, []string{`"red"`, `20`}},
		{`$.store..color`, []string{`"red"`}},
		{`$.nothing.here`, nil},
	}
	for _, c := range cases {
		got := selectStrings(t, c.path)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.path, got, c.want)
			continue
		}
		// Order-insensitive comparison: descendant traversal order is
		// implementation-defined across siblings.
		seen := map[string]int{}
		for _, g := range got {
			seen[g]++
		}
		for _, w := range c.want {
			seen[w]--
		}
		for k, v := range seen {
			if v != 0 {
				t.Errorf("%s: got %v, want %v (mismatch at %q)", c.path, got, c.want, k)
				break
			}
		}
	}
}

func TestCompiledFormulaExposed(t *testing.T) {
	p, err := Compile(`$..price`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Binary() == nil {
		t.Fatal("compiled path must expose its JNL translation")
	}
	if p.String() != `$..price` {
		t.Errorf("String() = %q", p.String())
	}
}

func TestRequiredPrefix(t *testing.T) {
	cases := []struct {
		src      string
		depth    int
		complete bool
	}{
		{`$.store.book[0]`, 3, true},
		{`$.store..price`, 1, false},
		{`$.a[*]`, 1, false},
		{`$[1:3].k`, 1, false},
		{`$`, 0, true},
	}
	for _, c := range cases {
		steps, complete := MustCompile(c.src).RequiredPrefix()
		if len(steps) != c.depth || complete != c.complete {
			t.Errorf("RequiredPrefix(%q) = %v, %v; want depth %d, %v",
				c.src, steps, complete, c.depth, c.complete)
		}
	}
}
