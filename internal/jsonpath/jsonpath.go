// Package jsonpath implements the JSONPath query language of Gössner
// and Frank, the XPath-inspired JSON language the paper reviews in §4.1
// and cites as motivation for non-deterministic and recursive JNL.
// Expressions compile to binary JNL formulas: child steps become key or
// index axes, wildcards become the union of a key-regex axis and an
// array-interval axis, the recursive-descent step ".." becomes a Kleene
// star, slices become interval axes, and filters "[?(...)]" become JNL
// node tests. Evaluation is delegated to the JNL product evaluator
// (Proposition 3), so it inherits its O(|J|·|path|) bound.
//
// Supported syntax: $, .key, ['key'], [i] (negative = from the end),
// [i:j] (half-open, j omitted = to the end), .*, [*], ..key, ..*, and
// filters [?(@.path op literal)] with op one of ==, !=, <, <=, >, >=
// and bare existence [?(@.path)].
package jsonpath

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/qir"
	"jsonlogic/internal/relang"
)

// Path is a compiled JSONPath expression.
type Path struct {
	source string
	binary jnl.Binary
}

// wildcard is the any-child step: any object edge or any array edge.
func wildcard() jnl.Binary {
	return jnl.Alt{
		Left:  jnl.RegexAxis{Re: relang.Any()},
		Right: jnl.RangeAxis{Lo: 0, Hi: jnl.Inf},
	}
}

// descendant is the ..: zero or more any-child steps.
func descendant() jnl.Binary { return jnl.Star{Inner: wildcard()} }

// Compile parses a JSONPath expression.
func Compile(src string) (*Path, error) {
	p := &pparser{in: src}
	b, err := p.parse()
	if err != nil {
		return nil, err
	}
	return &Path{source: src, binary: b}, nil
}

// MustCompile is Compile but panics on error.
func MustCompile(src string) *Path {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Binary returns the compiled JNL path.
func (p *Path) Binary() jnl.Binary { return p.binary }

// String returns the source expression.
func (p *Path) String() string { return p.source }

// Select returns the values selected by the path from the document, in
// document order.
func (p *Path) Select(doc *jsonval.Value) []*jsonval.Value {
	tr := jsontree.FromValue(doc)
	ev := jnl.NewEvaluator(tr)
	nodes := ev.Select(p.binary, tr.Root())
	out := make([]*jsonval.Value, len(nodes))
	for i, n := range nodes {
		out[i] = tr.Value(n)
	}
	return out
}

// SelectNodes returns the selected node ids of a pre-built tree.
func (p *Path) SelectNodes(tr *jsontree.Tree) []jsontree.NodeID {
	return jnl.NewEvaluator(tr).Select(p.binary, tr.Root())
}

type pparser struct {
	in  string
	pos int
}

func (p *pparser) errf(format string, args ...any) error {
	return fmt.Errorf("jsonpath: at offset %d of %q: %s", p.pos, p.in, fmt.Sprintf(format, args...))
}

func (p *pparser) parse() (jnl.Binary, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '$' {
		return nil, p.errf("a JSONPath must start with $")
	}
	p.pos++
	steps := []jnl.Binary{jnl.Epsilon{}}
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '.':
			if strings.HasPrefix(p.in[p.pos:], "..") {
				p.pos += 2
				steps = append(steps, descendant())
				// ".." must be followed by a name, * or bracket.
				if p.pos < len(p.in) && p.in[p.pos] == '[' {
					continue
				}
				step, err := p.nameStep()
				if err != nil {
					return nil, err
				}
				steps = append(steps, step)
				continue
			}
			p.pos++
			step, err := p.nameStep()
			if err != nil {
				return nil, err
			}
			steps = append(steps, step)
		case '[':
			step, err := p.bracketStep()
			if err != nil {
				return nil, err
			}
			steps = append(steps, step)
		default:
			return nil, p.errf("unexpected %q", p.in[p.pos])
		}
	}
	return jnl.Seq(steps...), nil
}

func (p *pparser) nameStep() (jnl.Binary, error) {
	if p.pos < len(p.in) && p.in[p.pos] == '*' {
		p.pos++
		return wildcard(), nil
	}
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '.' && p.in[p.pos] != '[' {
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("expected a member name")
	}
	return jnl.KeyAxis{Word: p.in[start:p.pos]}, nil
}

func (p *pparser) bracketStep() (jnl.Binary, error) {
	p.pos++ // consume '['
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, p.errf("unterminated bracket")
	}
	switch {
	case p.in[p.pos] == '*':
		p.pos++
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return wildcard(), nil
	case p.in[p.pos] == '\'':
		key, err := p.quoted()
		if err != nil {
			return nil, err
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return jnl.KeyAxis{Word: key}, nil
	case p.in[p.pos] == '?':
		return p.filterStep()
	default:
		return p.indexOrSlice()
	}
}

func (p *pparser) indexOrSlice() (jnl.Binary, error) {
	first, firstGiven, err := p.optInt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ':' {
		p.pos++
		second, secondGiven, err := p.optInt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		lo := 0
		if firstGiven {
			lo = first
		}
		hi := jnl.Inf
		if secondGiven {
			// JSONPath slices are half-open; the interval axis X_{i:j}
			// is inclusive.
			hi = second - 1
			if hi < lo {
				return nil, p.errf("empty slice %d:%d", lo, second)
			}
		}
		if lo < 0 {
			return nil, p.errf("negative slice bounds are not supported")
		}
		return jnl.RangeAxis{Lo: lo, Hi: hi}, nil
	}
	if !firstGiven {
		return nil, p.errf("expected an index")
	}
	if err := p.expect(']'); err != nil {
		return nil, err
	}
	return jnl.IndexAxis{Index: first}, nil
}

// filterStep parses [?(@.path op literal)] and [?(@.path)].
func (p *pparser) filterStep() (jnl.Binary, error) {
	p.pos++ // consume '?'
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '@' {
		return nil, p.errf("filter must start with @")
	}
	p.pos++
	// Parse the @-relative path: a sequence of .name and [i] steps.
	var steps []jnl.Binary
	for p.pos < len(p.in) {
		if p.in[p.pos] == '.' {
			p.pos++
			start := p.pos
			for p.pos < len(p.in) && !strings.ContainsRune(".[)=!<> ", rune(p.in[p.pos])) {
				p.pos++
			}
			if p.pos == start {
				return nil, p.errf("expected a member name in filter")
			}
			steps = append(steps, jnl.KeyAxis{Word: p.in[start:p.pos]})
			continue
		}
		if p.in[p.pos] == '[' {
			p.pos++
			i, given, err := p.optInt()
			if err != nil || !given {
				return nil, p.errf("expected an index in filter")
			}
			if err := p.expect(']'); err != nil {
				return nil, err
			}
			steps = append(steps, jnl.IndexAxis{Index: i})
			continue
		}
		break
	}
	rel := jnl.Seq(steps...)
	p.skipSpace()
	// Bare existence? A filter step selects the array elements whose
	// relative path satisfies the condition: X_{0:∞} ∘ ⟨condition⟩.
	if p.pos < len(p.in) && p.in[p.pos] == ')' {
		p.pos++
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return filterElements(jnl.Exists{Path: rel}), nil
	}
	// Comparison operator.
	ops := []string{"==", "!=", "<=", ">=", "<", ">"}
	var op string
	for _, cand := range ops {
		if strings.HasPrefix(p.in[p.pos:], cand) {
			op = cand
			p.pos += len(cand)
			break
		}
	}
	if op == "" {
		return nil, p.errf("expected a comparison operator")
	}
	p.skipSpace()
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if err := p.expect(']'); err != nil {
		return nil, err
	}
	test, err := comparison(rel, op, lit)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	return filterElements(test), nil
}

// filterElements turns a node condition into a JSONPath filter step:
// move to each array element, keep those satisfying the condition.
func filterElements(cond jnl.Unary) jnl.Binary {
	return jnl.Concat{
		Left:  jnl.RangeAxis{Lo: 0, Hi: jnl.Inf},
		Right: jnl.Test{Inner: cond},
	}
}

// comparison builds the JNL test for @.rel op lit. Equality uses EQ;
// order comparisons on numbers enumerate the bounded side via EQ over
// the finite candidate set — JNL has no order predicate, so we reject
// unbounded order comparisons against non-numbers.
func comparison(rel jnl.Binary, op string, lit *jsonval.Value) (jnl.Unary, error) {
	switch op {
	case "==":
		return jnl.EQDoc{Path: rel, Doc: lit}, nil
	case "!=":
		// Exists and differs (JSONPath semantics: missing paths do not
		// match !=).
		return jnl.And{
			Left:  jnl.Exists{Path: rel},
			Right: jnl.Not{Inner: jnl.EQDoc{Path: rel, Doc: lit}},
		}, nil
	}
	if !lit.IsNumber() {
		return nil, fmt.Errorf("order comparison %s requires a number literal", op)
	}
	n := lit.Num()
	// The candidate set below a bound is finite in the natural-number
	// value model; order tests become finite disjunctions of EQ.
	disj := func(lo, hi uint64) jnl.Unary {
		if hi < lo {
			return jnl.Not{Inner: jnl.True{}}
		}
		if hi-lo > 4096 {
			hi = lo + 4096
		}
		var out jnl.Unary = jnl.EQDoc{Path: rel, Doc: jsonval.Num(lo)}
		for v := lo + 1; v <= hi; v++ {
			out = jnl.Or{Left: out, Right: jnl.EQDoc{Path: rel, Doc: jsonval.Num(v)}}
		}
		return out
	}
	switch op {
	case "<":
		if n == 0 {
			return jnl.Not{Inner: jnl.True{}}, nil
		}
		return disj(0, n-1), nil
	case "<=":
		return disj(0, n), nil
	case ">":
		return jnl.Exists{Path: jnl.Concat{Left: rel, Right: jnl.Test{Inner: numericGuardGE(n + 1)}}}, nil
	case ">=":
		return jnl.Exists{Path: jnl.Concat{Left: rel, Right: jnl.Test{Inner: numericGuardGE(n)}}}, nil
	}
	return nil, fmt.Errorf("unknown operator %s", op)
}

// numericGuardGE approximates "is a number ≥ n" in pure JNL, which has
// no kind or order predicates: the node must be a leaf (no object or
// array children, and not the empty containers {} or []) and must not
// equal any of the finitely many smaller naturals. The approximation is
// exact whenever the compared field holds a number — string leaves are
// the only over-approximation, documented in the package comment.
func numericGuardGE(n uint64) jnl.Unary {
	noChildren := jnl.AndAll(
		jnl.Not{Inner: jnl.Exists{Path: jnl.RangeAxis{Lo: 0, Hi: jnl.Inf}}},
		jnl.Not{Inner: jnl.Exists{Path: jnl.RegexAxis{Re: relang.Any()}}},
		jnl.Not{Inner: jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.MustObj()}},
		jnl.Not{Inner: jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Arr()}},
	)
	out := noChildren
	hi := n
	if hi > 4096 {
		hi = 4096
	}
	for v := uint64(0); v < hi; v++ {
		out = jnl.And{Left: out, Right: jnl.Not{Inner: jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(v)}}}
	}
	return out
}

func (p *pparser) skipSpace() {
	for p.pos < len(p.in) && p.in[p.pos] == ' ' {
		p.pos++
	}
}

func (p *pparser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *pparser) optInt() (int, bool, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.in) && p.in[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.in[start] == '-') {
		p.pos = start
		return 0, false, nil
	}
	n, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, false, p.errf("integer out of range")
	}
	return n, true, nil
}

func (p *pparser) quoted() (string, error) {
	p.pos++ // consume opening quote
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '\'' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return "", p.errf("unterminated string")
	}
	s := p.in[start:p.pos]
	p.pos++
	return s, nil
}

func (p *pparser) literal() (*jsonval.Value, error) {
	if p.pos < len(p.in) && p.in[p.pos] == '\'' {
		s, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return jsonval.Str(s), nil
	}
	v, n, err := jsonval.ParsePrefix(p.in[p.pos:])
	if err != nil {
		return nil, p.errf("bad literal: %v", err)
	}
	p.pos += n
	return v, nil
}

// RequiredPrefix returns the exact navigation-step prefix every node
// selected by the path must lie under, and whether the prefix covers
// the whole path (no wildcard, slice, descent or filter remainder).
// The store's index planner uses it to prune candidate documents; an
// empty prefix means the path is not index-supported.
func (p *Path) RequiredPrefix() ([]jsontree.Step, bool) {
	return jnl.RequiredPrefix(p.binary)
}

// Lower translates the path into the unified query algebra: selection
// enumerates the compiled JNL path from the root, and matching ("does
// the path select anything") is its existential closure, so both
// semantics flow from one lowered structure. The JNL product evaluator
// remains the differential-test oracle.
func (p *Path) Lower() *qir.Query {
	sel := jnl.LowerBinary(p.binary)
	return &qir.Query{Pred: qir.Exists{Path: sel, Inner: qir.True{}}, Sel: sel}
}
