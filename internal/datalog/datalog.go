// Package datalog implements the non-recursive monadic datalog engine
// that the proof of Proposition 1 compiles JNL formulas into.
//
// A JSON tree is viewed as a relational structure over the JSON
// signature: one binary relation per object key ("key" edges), one per
// array position ("index" edges), unary kind predicates Obj/Arr/Str/Int,
// unary value predicates, and the binary subtree-equality relation Eq.
// A program is a set of rules with monadic intensional heads whose
// bodies are tree-shaped conjunctive queries over this signature,
// with stratified negation restricted to monadic intensional literals
// (exactly the "JSON programs" of the appendix).
//
// Because object keys and array positions are functional — the first
// two attributes of the O and A relations form a key — grounding a
// tree-shaped body at a node admits at most one valuation (Lemma 1).
// The engine exploits this: a rule is checked at a node by a single
// deterministic walk, Eq atoms are compared online against the walk's
// witnesses instead of materialising the quadratic Eq relation, and the
// whole evaluation runs in O(|J|·|P|) time for a program P.
package datalog

import (
	"fmt"
	"strings"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

// Pred identifies a monadic intensional predicate of a program.
type Pred int

// Var identifies a body variable of a rule. Variable 0 is always the
// head variable (the root of the tree-shaped body).
type Var int

// KindTest is a node-kind constraint usable as a body literal.
type KindTest uint8

// Kind tests on body variables.
const (
	AnyKind KindTest = iota
	ObjKind
	ArrKind
	StrKind
	IntKind
)

func (k KindTest) String() string {
	switch k {
	case ObjKind:
		return "obj"
	case ArrKind:
		return "arr"
	case StrKind:
		return "str"
	case IntKind:
		return "int"
	default:
		return "any"
	}
}

// Edge is a navigational body atom: To is the child of From reached via
// an object key (IsKey) or an array position. The edges of a body must
// form a tree rooted at variable 0.
type Edge struct {
	From, To Var
	IsKey    bool
	Key      string
	Index    int
}

// Test is a unary body literal on a variable: either a kind test or an
// intensional literal P(x) / ¬P(x).
type Test struct {
	Var  Var
	Kind KindTest // used when !HasPred
	// Intensional literal.
	HasPred bool
	Pred    Pred
	Negated bool
}

// EqAtom is a subtree-equality body atom: either Eq(A,B) between two
// body variables, or equality of A's subtree with the constant document
// Const. These are the atoms the engine compares "online" as the
// grounding walk produces witnesses.
type EqAtom struct {
	A, B  Var
	Const *jsonval.Value // non-nil: compare json(A) with Const instead of json(B)
}

// Body is a tree-shaped conjunctive query.
type Body struct {
	NumVars int
	Edges   []Edge
	Tests   []Test
	Eqs     []EqAtom
}

// Rule derives Head(x₀) from the body grounded with x₀ bound to a node.
type Rule struct {
	Head Pred
	Body Body
}

// Program is a non-recursive monadic datalog program with stratified
// negation over the JSON signature. Goal is the predicate whose
// extension is the program's answer.
type Program struct {
	names []string
	rules []Rule
	goal  Pred
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{}
}

// AddPred registers a new intensional predicate with a debug name.
func (p *Program) AddPred(name string) Pred {
	p.names = append(p.names, name)
	return Pred(len(p.names) - 1)
}

// NumPreds returns the number of registered predicates.
func (p *Program) NumPreds() int { return len(p.names) }

// NumRules returns the number of rules.
func (p *Program) NumRules() int { return len(p.rules) }

// PredName returns the debug name of pr.
func (p *Program) PredName(pr Pred) string { return p.names[pr] }

// AddRule appends a rule. The body is validated lazily by Evaluate.
func (p *Program) AddRule(r Rule) { p.rules = append(p.rules, r) }

// SetGoal marks the goal predicate.
func (p *Program) SetGoal(g Pred) { p.goal = g }

// Goal returns the goal predicate.
func (p *Program) Goal() Pred { return p.goal }

// Size returns the total number of body atoms plus heads, the |P|
// factor in the O(|J|·|P|) evaluation bound.
func (p *Program) Size() int {
	n := 0
	for _, r := range p.rules {
		n += 1 + len(r.Body.Edges) + len(r.Body.Tests) + len(r.Body.Eqs)
	}
	return n
}

// Validate checks the structural invariants of JSON programs: every
// body is tree-shaped and connected via its navigational atoms, rooted
// at variable 0, and the predicate dependency graph is acyclic (which
// both enforces non-recursiveness and makes every negation stratified).
func (p *Program) Validate() error {
	for i, r := range p.rules {
		if err := r.Body.validate(); err != nil {
			return fmt.Errorf("rule %d (head %s): %w", i, p.names[r.Head], err)
		}
		if int(r.Head) >= len(p.names) {
			return fmt.Errorf("rule %d: unknown head predicate %d", i, r.Head)
		}
		for _, t := range r.Body.Tests {
			if t.HasPred && int(t.Pred) >= len(p.names) {
				return fmt.Errorf("rule %d: unknown body predicate %d", i, t.Pred)
			}
		}
	}
	if _, err := p.topoOrder(); err != nil {
		return err
	}
	return nil
}

func (b *Body) validate() error {
	if b.NumVars < 1 {
		return fmt.Errorf("body has no variables")
	}
	seen := make([]bool, b.NumVars)
	seen[0] = true
	// Edges must be listed so that From is reachable before To (a
	// preorder listing of the body tree), and each variable has exactly
	// one incoming edge.
	for _, e := range b.Edges {
		if e.From < 0 || int(e.From) >= b.NumVars || e.To < 1 || int(e.To) >= b.NumVars {
			return fmt.Errorf("edge %v out of range", e)
		}
		if !seen[e.From] {
			return fmt.Errorf("edge into %d listed before its source %d is reachable", e.To, e.From)
		}
		if seen[e.To] {
			return fmt.Errorf("variable %d has two incoming edges", e.To)
		}
		seen[e.To] = true
	}
	for v := 0; v < b.NumVars; v++ {
		if !seen[v] {
			return fmt.Errorf("variable %d not connected to the body tree", v)
		}
	}
	for _, t := range b.Tests {
		if t.Var < 0 || int(t.Var) >= b.NumVars {
			return fmt.Errorf("test on out-of-range variable %d", t.Var)
		}
	}
	for _, e := range b.Eqs {
		if e.A < 0 || int(e.A) >= b.NumVars {
			return fmt.Errorf("eq atom on out-of-range variable %d", e.A)
		}
		if e.Const == nil && (e.B < 0 || int(e.B) >= b.NumVars) {
			return fmt.Errorf("eq atom on out-of-range variable %d", e.B)
		}
	}
	return nil
}

// topoOrder returns the predicates in dependency order (body predicates
// before heads), or an error if the dependency graph has a cycle.
func (p *Program) topoOrder() ([]Pred, error) {
	n := len(p.names)
	adj := make([][]Pred, n) // adj[q] lists heads depending on q
	indeg := make([]int, n)
	type depKey struct{ from, to Pred }
	dedup := make(map[depKey]bool)
	for _, r := range p.rules {
		for _, t := range r.Body.Tests {
			if !t.HasPred || t.Pred == r.Head {
				if t.HasPred && t.Pred == r.Head {
					return nil, fmt.Errorf("predicate %s depends on itself", p.names[r.Head])
				}
				continue
			}
			k := depKey{t.Pred, r.Head}
			if dedup[k] {
				continue
			}
			dedup[k] = true
			adj[t.Pred] = append(adj[t.Pred], r.Head)
			indeg[r.Head]++
		}
	}
	order := make([]Pred, 0, n)
	queue := make([]Pred, 0, n)
	for q := 0; q < n; q++ {
		if indeg[q] == 0 {
			queue = append(queue, Pred(q))
		}
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		order = append(order, q)
		for _, h := range adj[q] {
			indeg[h]--
			if indeg[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("program is recursive: predicate dependency graph has a cycle")
	}
	return order, nil
}

// Result holds the computed extensions of every predicate of a program
// over one tree.
type Result struct {
	prog *Program
	ext  [][]bool // ext[pred][node]
}

// Holds reports whether pred holds at node n.
func (r *Result) Holds(pred Pred, n jsontree.NodeID) bool {
	return r.ext[pred][n]
}

// GoalNodes returns the nodes in the extension of the goal predicate,
// in document order.
func (r *Result) GoalNodes() []jsontree.NodeID {
	var out []jsontree.NodeID
	for n, ok := range r.ext[r.prog.goal] {
		if ok {
			out = append(out, jsontree.NodeID(n))
		}
	}
	return out
}

// Evaluate computes the extension of every predicate of p over t by
// grounding rules bottom-up in predicate dependency order. Subtree
// equality atoms are decided online during each grounding walk, using
// the tree's structural-hash equality classes, so the total running
// time is O(|J|·|P|).
func Evaluate(p *Program, t *jsontree.Tree) (*Result, error) {
	order, err := p.topoOrder()
	if err != nil {
		return nil, err
	}
	for i, r := range p.rules {
		if err := r.Body.validate(); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
	}
	res := &Result{prog: p, ext: make([][]bool, len(p.names))}
	for q := range res.ext {
		res.ext[q] = make([]bool, t.Len())
	}
	rulesFor := make([][]Rule, len(p.names))
	for _, r := range p.rules {
		rulesFor[r.Head] = append(rulesFor[r.Head], r)
	}
	witness := make([]jsontree.NodeID, 0, 8)
	for _, q := range order {
		for _, r := range rulesFor[q] {
			for n := 0; n < t.Len(); n++ {
				if res.ext[q][n] {
					continue // an earlier rule already derived it
				}
				if groundAt(t, &r.Body, jsontree.NodeID(n), res, &witness) {
					res.ext[q][n] = true
				}
			}
		}
	}
	return res, nil
}

// groundAt attempts the unique grounding of body at node n (Lemma 1)
// and checks all literals against it.
func groundAt(t *jsontree.Tree, b *Body, n jsontree.NodeID, res *Result, scratch *[]jsontree.NodeID) bool {
	w := (*scratch)[:0]
	for len(w) < b.NumVars {
		w = append(w, jsontree.InvalidNode)
	}
	*scratch = w
	w[0] = n
	for _, e := range b.Edges {
		src := w[e.From]
		var dst jsontree.NodeID
		if e.IsKey {
			dst = t.ChildByKey(src, e.Key)
		} else {
			dst = t.ChildAt(src, e.Index)
		}
		if dst == jsontree.InvalidNode {
			return false
		}
		w[e.To] = dst
	}
	for _, ts := range b.Tests {
		node := w[ts.Var]
		if ts.HasPred {
			if res.ext[ts.Pred][node] == ts.Negated {
				return false
			}
			continue
		}
		if !kindMatches(t.Kind(node), ts.Kind) {
			return false
		}
	}
	for _, e := range b.Eqs {
		if e.Const != nil {
			if !subtreeEqualsValue(t, w[e.A], e.Const) {
				return false
			}
			continue
		}
		if !t.SubtreeEqual(w[e.A], w[e.B]) {
			return false
		}
	}
	return true
}

func kindMatches(k jsontree.Kind, want KindTest) bool {
	switch want {
	case AnyKind:
		return true
	case ObjKind:
		return k == jsontree.ObjectNode
	case ArrKind:
		return k == jsontree.ArrayNode
	case StrKind:
		return k == jsontree.StringNode
	case IntKind:
		return k == jsontree.NumberNode
	default:
		return false
	}
}

// subtreeEqualsValue compares json(n) with a constant document without
// materialising the subtree.
func subtreeEqualsValue(t *jsontree.Tree, n jsontree.NodeID, v *jsonval.Value) bool {
	if t.SubtreeHash(n) != v.Hash() || t.SubtreeSize(n) != v.Size() {
		return false
	}
	return t.EqualsValue(n, v)
}

// String renders the program in a readable datalog-like syntax.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.rules {
		fmt.Fprintf(&sb, "%s(x0) :- ", p.names[r.Head])
		first := true
		sep := func() {
			if !first {
				sb.WriteString(", ")
			}
			first = false
		}
		for _, e := range r.Body.Edges {
			sep()
			if e.IsKey {
				fmt.Fprintf(&sb, "key[%q](x%d,x%d)", e.Key, e.From, e.To)
			} else {
				fmt.Fprintf(&sb, "idx[%d](x%d,x%d)", e.Index, e.From, e.To)
			}
		}
		for _, ts := range r.Body.Tests {
			sep()
			if ts.HasPred {
				if ts.Negated {
					sb.WriteString("not ")
				}
				fmt.Fprintf(&sb, "%s(x%d)", p.names[ts.Pred], ts.Var)
			} else {
				fmt.Fprintf(&sb, "%s(x%d)", ts.Kind, ts.Var)
			}
		}
		for _, e := range r.Body.Eqs {
			sep()
			if e.Const != nil {
				fmt.Fprintf(&sb, "eq(x%d, %s)", e.A, e.Const)
			} else {
				fmt.Fprintf(&sb, "eq(x%d,x%d)", e.A, e.B)
			}
		}
		if first {
			sb.WriteString("true")
		}
		sb.WriteString(".\n")
	}
	fmt.Fprintf(&sb, "goal: %s\n", p.names[p.goal])
	return sb.String()
}
