package datalog

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

func mustTree(t *testing.T, doc string) *jsontree.Tree {
	t.Helper()
	tree, err := jsontree.Parse(doc)
	if err != nil {
		t.Fatalf("parse %q: %v", doc, err)
	}
	return tree
}

func mustParseJNL(t *testing.T, src string) jnl.Unary {
	t.Helper()
	u, err := jnl.Parse(src)
	if err != nil {
		t.Fatalf("parse JNL %q: %v", src, err)
	}
	return u
}

func goalAtRoot(t *testing.T, doc, formula string) bool {
	t.Helper()
	tree := mustTree(t, doc)
	u := mustParseJNL(t, formula)
	prog, err := FromJNL(u)
	if err != nil {
		t.Fatalf("FromJNL(%s): %v", formula, err)
	}
	res, err := Evaluate(prog, tree)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return res.Holds(prog.Goal(), tree.Root())
}

func TestEvaluateBasics(t *testing.T) {
	doc := `{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}`
	cases := []struct {
		formula string
		want    bool
	}{
		{`true`, true},
		{`[/name]`, true},
		{`[/name/first]`, true},
		{`[/name/middle]`, false},
		{`[/hobbies/0]`, true},
		{`[/hobbies/2]`, false},
		{`eq(/age, 32)`, true},
		{`eq(/age, 33)`, false},
		{`eq(/name, {"first":"John","last":"Doe"})`, true},
		{`eq(/name/first, "John") && eq(/hobbies/1, "yoga")`, true},
		{`![/salary]`, true},
		{`[/name] || [/salary]`, true},
		{`eq(/hobbies/0, /hobbies/1)`, false},
		{`eq(/name/first, /name/first)`, true},
	}
	for _, c := range cases {
		if got := goalAtRoot(t, doc, c.formula); got != c.want {
			t.Errorf("%s: got %v, want %v", c.formula, got, c.want)
		}
	}
}

func TestEvaluateTestsInPaths(t *testing.T) {
	doc := `{"a":{"b":[1,2]},"c":0}`
	cases := []struct {
		formula string
		want    bool
	}{
		{`[/a<[/b]>/b/0]`, true},
		{`[/a<[/z]>/b]`, false},
		{`eq(/a<[/b/1]>/b/0, 1)`, true},
	}
	for _, c := range cases {
		if got := goalAtRoot(t, doc, c.formula); got != c.want {
			t.Errorf("%s: got %v, want %v", c.formula, got, c.want)
		}
	}
}

func TestFromJNLRejectsNonDeterministic(t *testing.T) {
	for _, src := range []string{
		`[/~"a|b"]`,
		`[/[0:2]]`,
		`[(/a)*]`,
		`[/[1:]]`,
	} {
		u := mustParseJNL(t, src)
		if _, err := FromJNL(u); err == nil {
			t.Errorf("FromJNL(%s): expected error for non-deterministic formula", src)
		}
	}
}

func TestProgramSizeLinear(t *testing.T) {
	// The program must stay linear in the formula size: build a chain of
	// conjunctions and check Size grows linearly.
	var u jnl.Unary = jnl.Exists{Path: jnl.Key("k0")}
	prev := 0
	for i := 1; i <= 32; i++ {
		u = jnl.And{Left: u, Right: jnl.Exists{Path: jnl.Key("k")}}
		prog, err := FromJNL(u)
		if err != nil {
			t.Fatal(err)
		}
		sz := prog.Size()
		if prev != 0 && sz-prev > 8 {
			t.Fatalf("program size jumped from %d to %d at step %d", prev, sz, i)
		}
		prev = sz
	}
}

func TestValidateRejectsBadBodies(t *testing.T) {
	t.Run("disconnected", func(t *testing.T) {
		p := NewProgram()
		q := p.AddPred("q")
		p.AddRule(Rule{Head: q, Body: Body{NumVars: 2}})
		p.SetGoal(q)
		if err := p.Validate(); err == nil {
			t.Fatal("expected error for disconnected body variable")
		}
	})
	t.Run("two incoming edges", func(t *testing.T) {
		p := NewProgram()
		q := p.AddPred("q")
		p.AddRule(Rule{Head: q, Body: Body{
			NumVars: 2,
			Edges: []Edge{
				{From: 0, To: 1, IsKey: true, Key: "a"},
				{From: 0, To: 1, IsKey: true, Key: "b"},
			},
		}})
		p.SetGoal(q)
		if err := p.Validate(); err == nil {
			t.Fatal("expected error for variable with two incoming edges")
		}
	})
	t.Run("cyclic dependency", func(t *testing.T) {
		p := NewProgram()
		a := p.AddPred("a")
		b := p.AddPred("b")
		p.AddRule(Rule{Head: a, Body: Body{NumVars: 1, Tests: []Test{{Var: 0, HasPred: true, Pred: b}}}})
		p.AddRule(Rule{Head: b, Body: Body{NumVars: 1, Tests: []Test{{Var: 0, HasPred: true, Pred: a}}}})
		p.SetGoal(a)
		if err := p.Validate(); err == nil {
			t.Fatal("expected error for cyclic program")
		}
	})
	t.Run("self dependency", func(t *testing.T) {
		p := NewProgram()
		a := p.AddPred("a")
		p.AddRule(Rule{Head: a, Body: Body{NumVars: 1, Tests: []Test{{Var: 0, HasPred: true, Pred: a}}}})
		p.SetGoal(a)
		if err := p.Validate(); err == nil {
			t.Fatal("expected error for self-dependent predicate")
		}
	})
}

func TestStratifiedNegation(t *testing.T) {
	// not [/a] and not (not [/b]) exercises two strata of negation.
	doc := `{"b": 1}`
	if !goalAtRoot(t, doc, `![/a] && !(![/b])`) {
		t.Fatal("stratified negation gave the wrong answer")
	}
}

func TestKindTests(t *testing.T) {
	tree := mustTree(t, `{"o":{},"a":[],"s":"x","n":7}`)
	p := NewProgram()
	for _, c := range []struct {
		kind KindTest
		key  string
	}{
		{ObjKind, "o"}, {ArrKind, "a"}, {StrKind, "s"}, {IntKind, "n"},
	} {
		q := p.AddPred(c.kind.String())
		p.AddRule(Rule{Head: q, Body: Body{
			NumVars: 2,
			Edges:   []Edge{{From: 0, To: 1, IsKey: true, Key: c.key}},
			Tests:   []Test{{Var: 1, Kind: c.kind}},
		}})
		p.SetGoal(q)
		res, err := Evaluate(p, tree)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds(q, tree.Root()) {
			t.Errorf("kind test %s on key %q failed", c.kind, c.key)
		}
	}
	// Cross-check: string node is not an object.
	q := p.AddPred("cross")
	p.AddRule(Rule{Head: q, Body: Body{
		NumVars: 2,
		Edges:   []Edge{{From: 0, To: 1, IsKey: true, Key: "s"}},
		Tests:   []Test{{Var: 1, Kind: ObjKind}},
	}})
	p.SetGoal(q)
	res, err := Evaluate(p, tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds(q, tree.Root()) {
		t.Error("string node passed ObjKind test")
	}
}

// --- differential testing against the direct JNL evaluator ---

func randDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(4)))
		}
		return jsonval.Str(string(rune('a' + r.Intn(3))))
	}
	if r.Intn(2) == 0 {
		n := r.Intn(3)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	keys := []string{"a", "b", "c"}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := r.Intn(3)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, jsonval.Member{Key: keys[i], Value: randDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

func randDetPath(r *rand.Rand, depth int) jnl.Binary {
	switch r.Intn(6) {
	case 0:
		return jnl.Epsilon{}
	case 1:
		return jnl.Key(string(rune('a' + r.Intn(3))))
	case 2:
		return jnl.At(r.Intn(3) - 1) // exercises negative indices too
	case 3:
		if depth > 0 {
			return jnl.Test{Inner: randDetUnary(r, depth-1)}
		}
		return jnl.Epsilon{}
	default:
		if depth > 0 {
			return jnl.Concat{Left: randDetPath(r, depth-1), Right: randDetPath(r, depth-1)}
		}
		return jnl.Key("a")
	}
}

func randDetUnary(r *rand.Rand, depth int) jnl.Unary {
	if depth == 0 {
		return jnl.True{}
	}
	switch r.Intn(7) {
	case 0:
		return jnl.True{}
	case 1:
		return jnl.Not{Inner: randDetUnary(r, depth-1)}
	case 2:
		return jnl.And{Left: randDetUnary(r, depth-1), Right: randDetUnary(r, depth-1)}
	case 3:
		return jnl.Or{Left: randDetUnary(r, depth-1), Right: randDetUnary(r, depth-1)}
	case 4:
		return jnl.Exists{Path: randDetPath(r, depth-1)}
	case 5:
		return jnl.EQDoc{Path: randDetPath(r, depth-1), Doc: randDoc(r, 1)}
	default:
		return jnl.EQPaths{Left: randDetPath(r, depth-1), Right: randDetPath(r, depth-1)}
	}
}

type diffCase struct {
	doc *jsonval.Value
	u   jnl.Unary
}

func (diffCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(diffCase{randDoc(r, 2+r.Intn(2)), randDetUnary(r, 3)})
}

// TestDifferentialVsJNL checks that the datalog translation and engine
// agree with the direct JNL evaluator on every node of random trees for
// random deterministic formulas.
func TestDifferentialVsJNL(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(c diffCase) bool {
		tree := jsontree.FromValue(c.doc)
		prog, err := FromJNL(c.u)
		if err != nil {
			t.Fatalf("FromJNL(%s): %v", jnl.String(c.u), err)
		}
		res, err := Evaluate(prog, tree)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		want := jnl.Eval(tree, c.u)
		for _, n := range tree.Nodes() {
			if res.Holds(prog.Goal(), n) != want.Contains(n) {
				t.Logf("doc: %s", c.doc)
				t.Logf("formula: %s", jnl.String(c.u))
				t.Logf("node %d: datalog=%v direct=%v", n, res.Holds(prog.Goal(), n), want.Contains(n))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGoalNodes(t *testing.T) {
	tree := mustTree(t, `{"a":{"b":1},"c":{"b":2}}`)
	u := mustParseJNL(t, `[/b]`)
	prog, err := FromJNL(u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(prog, tree)
	if err != nil {
		t.Fatal(err)
	}
	got := res.GoalNodes()
	want := jnl.Eval(tree, u).Slice()
	if len(got) != len(want) {
		t.Fatalf("GoalNodes: got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("GoalNodes: got %v want %v", got, want)
		}
	}
}

func TestProgramString(t *testing.T) {
	u := mustParseJNL(t, `eq(/a, 1) && ![/b]`)
	prog, err := FromJNL(u)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	if s == "" {
		t.Fatal("empty program rendering")
	}
	for _, frag := range []string{"key[\"a\"]", "eq(", "not ", "goal:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("program rendering missing %q:\n%s", frag, s)
		}
	}
}
