// Translation of deterministic JNL into monadic datalog programs, the
// compilation step in the proof of Proposition 1.

package datalog

import (
	"fmt"

	"jsonlogic/internal/jnl"
)

// FromJNL compiles a deterministic JNL unary formula into an equivalent
// non-recursive monadic datalog program with stratified negation. The
// program has one intensional predicate per unary subformula and one
// rule per disjunct, so its size is linear in |φ|; evaluating it with
// Evaluate realises the O(|J|·|φ|) bound of Proposition 1.
//
// FromJNL reports an error when the formula uses the non-deterministic
// or recursive extensions of §4.3 (regex axes, interval axes, union or
// Kleene star of paths), which fall outside the deterministic logic the
// datalog translation covers.
func FromJNL(u jnl.Unary) (*Program, error) {
	c := &compiler{prog: NewProgram()}
	goal, err := c.unary(u)
	if err != nil {
		return nil, err
	}
	c.prog.SetGoal(goal)
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("internal: generated invalid program: %w", err)
	}
	return c.prog, nil
}

type compiler struct {
	prog *Program
	next int // fresh-predicate counter
}

func (c *compiler) fresh(hint string) Pred {
	c.next++
	return c.prog.AddPred(fmt.Sprintf("p%d_%s", c.next, hint))
}

// unary compiles a unary formula and returns the predicate holding
// exactly at the nodes satisfying it.
func (c *compiler) unary(u jnl.Unary) (Pred, error) {
	switch f := u.(type) {
	case jnl.True:
		p := c.fresh("true")
		c.prog.AddRule(Rule{Head: p, Body: Body{NumVars: 1}})
		return p, nil
	case jnl.Not:
		inner, err := c.unary(f.Inner)
		if err != nil {
			return 0, err
		}
		p := c.fresh("not")
		c.prog.AddRule(Rule{Head: p, Body: Body{
			NumVars: 1,
			Tests:   []Test{{Var: 0, HasPred: true, Pred: inner, Negated: true}},
		}})
		return p, nil
	case jnl.And:
		l, err := c.unary(f.Left)
		if err != nil {
			return 0, err
		}
		r, err := c.unary(f.Right)
		if err != nil {
			return 0, err
		}
		p := c.fresh("and")
		c.prog.AddRule(Rule{Head: p, Body: Body{
			NumVars: 1,
			Tests: []Test{
				{Var: 0, HasPred: true, Pred: l},
				{Var: 0, HasPred: true, Pred: r},
			},
		}})
		return p, nil
	case jnl.Or:
		l, err := c.unary(f.Left)
		if err != nil {
			return 0, err
		}
		r, err := c.unary(f.Right)
		if err != nil {
			return 0, err
		}
		p := c.fresh("or")
		c.prog.AddRule(Rule{Head: p, Body: Body{
			NumVars: 1,
			Tests:   []Test{{Var: 0, HasPred: true, Pred: l}},
		}})
		c.prog.AddRule(Rule{Head: p, Body: Body{
			NumVars: 1,
			Tests:   []Test{{Var: 0, HasPred: true, Pred: r}},
		}})
		return p, nil
	case jnl.Exists:
		body := Body{NumVars: 1}
		if _, err := c.path(&body, 0, f.Path); err != nil {
			return 0, err
		}
		p := c.fresh("exists")
		c.prog.AddRule(Rule{Head: p, Body: body})
		return p, nil
	case jnl.EQDoc:
		body := Body{NumVars: 1}
		end, err := c.path(&body, 0, f.Path)
		if err != nil {
			return 0, err
		}
		body.Eqs = append(body.Eqs, EqAtom{A: end, Const: f.Doc})
		p := c.fresh("eqdoc")
		c.prog.AddRule(Rule{Head: p, Body: body})
		return p, nil
	case jnl.EQPaths:
		body := Body{NumVars: 1}
		endL, err := c.path(&body, 0, f.Left)
		if err != nil {
			return 0, err
		}
		endR, err := c.path(&body, 0, f.Right)
		if err != nil {
			return 0, err
		}
		body.Eqs = append(body.Eqs, EqAtom{A: endL, B: endR})
		p := c.fresh("eqpaths")
		c.prog.AddRule(Rule{Head: p, Body: body})
		return p, nil
	default:
		return 0, fmt.Errorf("datalog: unary %T is not deterministic JNL", u)
	}
}

// path extends body with the navigational atoms of the deterministic
// binary formula b starting at variable from, and returns the variable
// bound to the path's endpoint. Tests ⟨φ⟩ embedded in the path become
// intensional literals on the variable at which they occur.
func (c *compiler) path(body *Body, from Var, b jnl.Binary) (Var, error) {
	switch f := b.(type) {
	case jnl.Epsilon:
		return from, nil
	case jnl.KeyAxis:
		to := Var(body.NumVars)
		body.NumVars++
		body.Edges = append(body.Edges, Edge{From: from, To: to, IsKey: true, Key: f.Word})
		return to, nil
	case jnl.IndexAxis:
		to := Var(body.NumVars)
		body.NumVars++
		body.Edges = append(body.Edges, Edge{From: from, To: to, Index: f.Index})
		return to, nil
	case jnl.Test:
		inner, err := c.unary(f.Inner)
		if err != nil {
			return 0, err
		}
		body.Tests = append(body.Tests, Test{Var: from, HasPred: true, Pred: inner})
		return from, nil
	case jnl.Concat:
		mid, err := c.path(body, from, f.Left)
		if err != nil {
			return 0, err
		}
		return c.path(body, mid, f.Right)
	default:
		return 0, fmt.Errorf("datalog: path %T is not deterministic JNL", b)
	}
}
