package jsonval

import (
	"fmt"
	"testing"
)

// TestIncrementalHashAgreement checks that the exported incremental
// hashers reproduce Value.Hash exactly for every kind, including the
// order-independence of object hashing.
func TestIncrementalHashAgreement(t *testing.T) {
	if got, want := HashNumber(42), Num(42).Hash(); got != want {
		t.Errorf("HashNumber(42) = %#x, want %#x", got, want)
	}
	if got, want := HashString("hobby"), Str("hobby").Hash(); got != want {
		t.Errorf("HashString = %#x, want %#x", got, want)
	}
	if HashString("") == HashNumber(0) {
		t.Error("empty string and zero hash to the same value")
	}

	elems := []*Value{Num(1), Str("x"), Arr(Num(2))}
	var ah ArrayHasher
	for _, e := range elems {
		ah.Add(e.Hash())
	}
	if got, want := ah.Sum(), Arr(elems...).Hash(); got != want {
		t.Errorf("ArrayHasher = %#x, want %#x", got, want)
	}
	var empty ArrayHasher
	if got, want := empty.Sum(), Arr().Hash(); got != want {
		t.Errorf("empty ArrayHasher = %#x, want %#x", got, want)
	}

	members := []Member{
		{Key: "name", Value: Str("sue")},
		{Key: "age", Value: Num(34)},
		{Key: "tags", Value: Arr(Str("a"), Str("b"))},
	}
	var oh ObjectHasher
	for _, m := range members {
		oh.Add(m.Key, m.Value.Hash())
	}
	if got, want := oh.Sum(), MustObj(members...).Hash(); got != want {
		t.Errorf("ObjectHasher = %#x, want %#x", got, want)
	}
	// Commutativity: adding members in reverse order gives the same sum.
	var rev ObjectHasher
	for i := len(members) - 1; i >= 0; i-- {
		rev.Add(members[i].Key, members[i].Value.Hash())
	}
	if rev.Sum() != oh.Sum() {
		t.Error("ObjectHasher is order-dependent")
	}
	var emptyObj ObjectHasher
	if got, want := emptyObj.Sum(), MustObj().Hash(); got != want {
		t.Errorf("empty ObjectHasher = %#x, want %#x", got, want)
	}
}

// TestIncrementalHashNested drives the hashers over a nested document
// bottom-up and compares against the parser's hash.
func TestIncrementalHashNested(t *testing.T) {
	src := `{"a":[1,{"b":"x","c":[]},3],"d":{},"e":"y"}`
	v := MustParse(src)

	inner := func() uint64 {
		var o ObjectHasher
		o.Add("b", HashString("x"))
		var emptyArr ArrayHasher
		o.Add("c", emptyArr.Sum())
		return o.Sum()
	}()
	var a ArrayHasher
	a.Add(HashNumber(1))
	a.Add(inner)
	a.Add(HashNumber(3))
	var d ObjectHasher
	var root ObjectHasher
	root.Add("a", a.Sum())
	root.Add("d", d.Sum())
	root.Add("e", HashString("y"))
	if got, want := root.Sum(), v.Hash(); got != want {
		t.Fatalf("incremental hash of %s = %#x, want %#x", src, got, want)
	}
}

// TestHashDistinguishesKinds guards against collisions between small
// values of different kinds that the engine's plan-cache fuzzing
// depends on being distinct.
func TestHashDistinguishesKinds(t *testing.T) {
	vals := []*Value{Num(0), Str(""), Arr(), MustObj(), Str("0"), Arr(Num(0))}
	seen := map[uint64]string{}
	for _, v := range vals {
		if prev, dup := seen[v.Hash()]; dup {
			t.Errorf("hash collision between %s and %s", prev, v)
		}
		seen[v.Hash()] = fmt.Sprintf("%v", v)
	}
}
