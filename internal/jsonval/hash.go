package jsonval

// Incremental structural hashing. These helpers expose the hash scheme
// used by Value.Hash so that tree representations built without
// materializing Values (notably jsontree.Builder, fed by the streaming
// tokenizer) produce hashes identical to FromValue construction. The
// json(n) = A comparisons across the system rely on that agreement:
// jnl's EQDoc and jsl's EqDoc compare subtree hashes of trees against
// Value hashes of constants.
//
// The scheme is FNV-1a over a post-order serialization of the value,
// with object members folded commutatively (sum and xor of per-member
// hashes) so member order never affects the hash.

// kindSeed mixes the value kind into a fresh hash state.
func kindSeed(k Kind) uint64 {
	return fnvMix(fnvOffset, uint64(k)+0x9e37)
}

// HashNumber returns Num(n).Hash() without allocating the Value.
func HashNumber(n uint64) uint64 {
	return fnvMix(kindSeed(Number), n)
}

// HashString returns Str(s).Hash() without allocating the Value.
func HashString(s string) uint64 {
	return fnvString(kindSeed(String), s)
}

// ArrayHasher incrementally computes the hash of an array from its
// element hashes, in order. The zero value is ready to use and hashes
// the empty array.
type ArrayHasher struct {
	h       uint64
	started bool
}

// Add folds in the hash of the next element.
func (a *ArrayHasher) Add(elemHash uint64) {
	if !a.started {
		a.h = kindSeed(Array)
		a.started = true
	}
	a.h = fnvMix(a.h, elemHash)
}

// Sum returns the array hash over the elements added so far.
func (a *ArrayHasher) Sum() uint64 {
	if !a.started {
		return kindSeed(Array)
	}
	return a.h
}

// ObjectHasher incrementally computes the hash of an object from its
// members' keys and value hashes, in any order (the fold is
// commutative). The zero value is ready to use and hashes the empty
// object.
type ObjectHasher struct {
	sum, xor uint64
	n        int
}

// Add folds in one member.
func (o *ObjectHasher) Add(key string, valueHash uint64) {
	mh := fnvString(fnvOffset, key)
	mh = fnvMix(mh, valueHash)
	o.sum += mh
	o.xor ^= mh*fnvPrime + 1
	o.n++
}

// Sum returns the object hash over the members added so far.
func (o *ObjectHasher) Sum() uint64 {
	h := kindSeed(Object)
	h = fnvMix(h, o.sum)
	h = fnvMix(h, o.xor)
	h = fnvMix(h, uint64(o.n))
	return h
}
