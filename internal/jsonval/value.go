// Package jsonval implements the JSON value model of Bourhis, Reutter,
// Suárez and Vrgoč (PODS 2017, §2). Following the paper, the value space
// is restricted to four kinds: objects, arrays, strings and natural
// numbers. Objects are sets of key-value pairs with pairwise-distinct
// keys; arrays are ordered sequences.
//
// The package provides an immutable value ADT, a hand-written
// lexer/parser that enforces the paper's restrictions (duplicate keys are
// rejected, numbers must be naturals), serializers (compact, indented and
// canonical forms), deep structural equality and structural hashing.
package jsonval

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies one of the four JSON value kinds of the paper's model.
type Kind uint8

const (
	// Number is a natural number value (n >= 0).
	Number Kind = iota
	// String is a unicode string value.
	String
	// Object is a set of key-value pairs with pairwise-distinct keys.
	Object
	// Array is an ordered sequence of values.
	Array
)

// String returns the lower-case name of the kind, matching the names used
// by the JSON Schema "type" keyword.
func (k Kind) String() string {
	switch k {
	case Number:
		return "number"
	case String:
		return "string"
	case Object:
		return "object"
	case Array:
		return "array"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Member is a single key-value pair of an object.
type Member struct {
	Key   string
	Value *Value
}

// Value is an immutable JSON value. The zero value is the number 0.
// Values must be constructed through Num, Str, Obj and Arr (or the
// parser); fields are unexported to preserve the invariants that object
// keys are pairwise distinct and that nested values are non-nil.
type Value struct {
	kind    Kind
	num     uint64
	str     string
	members []Member // object members, insertion order preserved
	elems   []*Value // array elements
	hash    uint64   // structural hash, computed at construction
}

// Num returns the JSON number n.
func Num(n uint64) *Value {
	v := &Value{kind: Number, num: n}
	v.hash = v.computeHash()
	return v
}

// Str returns the JSON string s.
func Str(s string) *Value {
	v := &Value{kind: String, str: s}
	v.hash = v.computeHash()
	return v
}

// Obj returns the JSON object with the given members, preserving their
// order for serialization. It returns an error if two members share a key
// or any member value is nil, mirroring the paper's requirement that keys
// of an object are pairwise distinct.
func Obj(members ...Member) (*Value, error) {
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m.Value == nil {
			return nil, fmt.Errorf("jsonval: nil value for key %q", m.Key)
		}
		if _, dup := seen[m.Key]; dup {
			return nil, fmt.Errorf("jsonval: duplicate key %q in object", m.Key)
		}
		seen[m.Key] = struct{}{}
	}
	v := &Value{kind: Object, members: append([]Member(nil), members...)}
	v.hash = v.computeHash()
	return v, nil
}

// MustObj is like Obj but panics on error. It is intended for literals in
// tests and examples where keys are statically known to be distinct.
func MustObj(members ...Member) *Value {
	v, err := Obj(members...)
	if err != nil {
		panic(err)
	}
	return v
}

// Arr returns the JSON array with the given elements. Nil elements panic.
func Arr(elems ...*Value) *Value {
	for i, e := range elems {
		if e == nil {
			panic(fmt.Sprintf("jsonval: nil element at index %d", i))
		}
	}
	v := &Value{kind: Array, elems: append([]*Value(nil), elems...)}
	v.hash = v.computeHash()
	return v
}

// Kind reports the kind of the value.
func (v *Value) Kind() Kind { return v.kind }

// IsNumber reports whether the value is a number.
func (v *Value) IsNumber() bool { return v.kind == Number }

// IsString reports whether the value is a string.
func (v *Value) IsString() bool { return v.kind == String }

// IsObject reports whether the value is an object.
func (v *Value) IsObject() bool { return v.kind == Object }

// IsArray reports whether the value is an array.
func (v *Value) IsArray() bool { return v.kind == Array }

// Num returns the numeric value. It panics if the value is not a number.
func (v *Value) Num() uint64 {
	if v.kind != Number {
		panic("jsonval: Num called on " + v.kind.String())
	}
	return v.num
}

// Str returns the string value. It panics if the value is not a string.
func (v *Value) Str() string {
	if v.kind != String {
		panic("jsonval: Str called on " + v.kind.String())
	}
	return v.str
}

// Len returns the number of members of an object or elements of an array,
// and 0 for numbers and strings.
func (v *Value) Len() int {
	switch v.kind {
	case Object:
		return len(v.members)
	case Array:
		return len(v.elems)
	}
	return 0
}

// Member returns the value under key in an object, implementing the JSON
// navigation instruction J[key] of §2. The second result reports whether
// the key is present. It panics if the value is not an object.
func (v *Value) Member(key string) (*Value, bool) {
	if v.kind != Object {
		panic("jsonval: Member called on " + v.kind.String())
	}
	for _, m := range v.members {
		if m.Key == key {
			return m.Value, true
		}
	}
	return nil, false
}

// Elem returns the i-th element of an array, implementing the JSON
// navigation instruction J[i] of §2. The second result reports whether i
// is in range. Negative indices count from the end, with -1 the last
// element, matching the paper's remark on dual array access.
func (v *Value) Elem(i int) (*Value, bool) {
	if v.kind != Array {
		panic("jsonval: Elem called on " + v.kind.String())
	}
	if i < 0 {
		i += len(v.elems)
	}
	if i < 0 || i >= len(v.elems) {
		return nil, false
	}
	return v.elems[i], true
}

// Members returns the object's key-value pairs in insertion order. The
// returned slice must not be modified. It is empty for non-objects.
func (v *Value) Members() []Member {
	if v.kind != Object {
		return nil
	}
	return v.members
}

// Elems returns the array's elements in order. The returned slice must not
// be modified. It is empty for non-arrays.
func (v *Value) Elems() []*Value {
	if v.kind != Array {
		return nil
	}
	return v.elems
}

// Keys returns the object's keys in insertion order.
func (v *Value) Keys() []string {
	if v.kind != Object {
		return nil
	}
	keys := make([]string, len(v.members))
	for i, m := range v.members {
		keys[i] = m.Key
	}
	return keys
}

// Hash returns a 64-bit structural hash of the value. Equal values (per
// Equal) have equal hashes; object member order does not affect the hash.
func (v *Value) Hash() uint64 { return v.hash }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func (v *Value) computeHash() uint64 {
	switch v.kind {
	case Number:
		return HashNumber(v.num)
	case String:
		return HashString(v.str)
	case Array:
		var ah ArrayHasher
		for _, e := range v.elems {
			ah.Add(e.hash)
		}
		return ah.Sum()
	case Object:
		// Objects are unordered: combine per-member hashes with a
		// commutative fold so member order is irrelevant.
		var oh ObjectHasher
		for _, m := range v.members {
			oh.Add(m.Key, m.Value.hash)
		}
		return oh.Sum()
	}
	return kindSeed(v.kind)
}

// Equal reports deep structural equality of two values. Objects compare as
// unordered sets of key-value pairs; arrays compare element-wise in order.
// This is the equality used by the paper's json(n) = A comparisons.
func Equal(a, b *Value) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind || a.hash != b.hash {
		return false
	}
	switch a.kind {
	case Number:
		return a.num == b.num
	case String:
		return a.str == b.str
	case Array:
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !Equal(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case Object:
		if len(a.members) != len(b.members) {
			return false
		}
		for _, m := range a.members {
			bv, ok := b.Member(m.Key)
			if !ok || !Equal(m.Value, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// EqualNaive is Equal without the hash short-circuit: a full recursive
// comparison in O(min(|a|,|b|)). It exists so benchmarks can ablate the
// contribution of structural hashing to subtree-equality checks.
func EqualNaive(a, b *Value) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind {
		return false
	}
	switch a.kind {
	case Number:
		return a.num == b.num
	case String:
		return a.str == b.str
	case Array:
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !EqualNaive(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case Object:
		if len(a.members) != len(b.members) {
			return false
		}
		for _, m := range a.members {
			bv, ok := b.Member(m.Key)
			if !ok || !EqualNaive(m.Value, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// Size returns the number of JSON values nested within v, including v
// itself. For the document of Figure 1 of the paper this is 8 (the object,
// the "name" object, two name strings, the age number, the hobbies array
// and its two strings).
func (v *Value) Size() int {
	n := 1
	switch v.kind {
	case Array:
		for _, e := range v.elems {
			n += e.Size()
		}
	case Object:
		for _, m := range v.members {
			n += m.Value.Size()
		}
	}
	return n
}

// Height returns the height of the value seen as a tree: 0 for numbers,
// strings and empty containers.
func (v *Value) Height() int {
	h := 0
	switch v.kind {
	case Array:
		for _, e := range v.elems {
			if eh := e.Height() + 1; eh > h {
				h = eh
			}
		}
	case Object:
		for _, m := range v.members {
			if mh := m.Value.Height() + 1; mh > h {
				h = mh
			}
		}
	}
	return h
}

// String returns the compact serialization of the value.
func (v *Value) String() string {
	var sb strings.Builder
	v.write(&sb, false, "", "")
	return sb.String()
}

// Indent returns an indented serialization using the given indent unit.
func (v *Value) Indent(indent string) string {
	var sb strings.Builder
	v.write(&sb, false, "", indent)
	return sb.String()
}

// Canonical returns a canonical serialization: object members sorted by
// key, no whitespace. Equal values have identical canonical forms, so the
// canonical form can serve as a map key.
func (v *Value) Canonical() string {
	var sb strings.Builder
	v.write(&sb, true, "", "")
	return sb.String()
}

func (v *Value) write(sb *strings.Builder, canonical bool, prefix, indent string) {
	switch v.kind {
	case Number:
		sb.WriteString(strconv.FormatUint(v.num, 10))
	case String:
		writeQuoted(sb, v.str)
	case Array:
		if len(v.elems) == 0 {
			sb.WriteString("[]")
			return
		}
		sb.WriteByte('[')
		inner := prefix + indent
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteByte(',')
			}
			if indent != "" {
				sb.WriteByte('\n')
				sb.WriteString(inner)
			}
			e.write(sb, canonical, inner, indent)
		}
		if indent != "" {
			sb.WriteByte('\n')
			sb.WriteString(prefix)
		}
		sb.WriteByte(']')
	case Object:
		if len(v.members) == 0 {
			sb.WriteString("{}")
			return
		}
		members := v.members
		if canonical {
			members = append([]Member(nil), v.members...)
			sort.Slice(members, func(i, j int) bool { return members[i].Key < members[j].Key })
		}
		sb.WriteByte('{')
		inner := prefix + indent
		for i, m := range members {
			if i > 0 {
				sb.WriteByte(',')
			}
			if indent != "" {
				sb.WriteByte('\n')
				sb.WriteString(inner)
			}
			writeQuoted(sb, m.Key)
			sb.WriteByte(':')
			if indent != "" {
				sb.WriteByte(' ')
			}
			m.Value.write(sb, canonical, inner, indent)
		}
		if indent != "" {
			sb.WriteByte('\n')
			sb.WriteString(prefix)
		}
		sb.WriteByte('}')
	}
}

func writeQuoted(sb *strings.Builder, s string) {
	WriteQuoted(sb, s)
}

// QuoteWriter is the sink WriteQuoted renders into. *strings.Builder
// and *bufio.Writer both satisfy it.
type QuoteWriter interface {
	io.Writer
	WriteString(s string) (int, error)
	WriteByte(b byte) error
	WriteRune(r rune) (int, error)
}

// WriteQuoted writes the JSON string literal for s — the exact bytes
// Value.String produces for a string value. It is the one quoting
// implementation shared by the value serializers here and the
// streaming tree encoder (jsontree.Tree.WriteTo), so the two cannot
// drift. Write errors are the sink's to report (a strings.Builder
// never fails; a bufio.Writer holds the error until Flush).
func WriteQuoted(w QuoteWriter, s string) {
	w.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '\t':
			w.WriteString(`\t`)
		case '\b':
			w.WriteString(`\b`)
		case '\f':
			w.WriteString(`\f`)
		default:
			if r < 0x20 {
				fmt.Fprintf(w, `\u%04x`, r)
			} else {
				w.WriteRune(r)
			}
		}
	}
	w.WriteByte('"')
}
