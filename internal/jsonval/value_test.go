package jsonval

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// figure1 is the JSON document of Figure 1 of the paper.
const figure1 = `{
	"name": {
		"first": "John",
		"last": "Doe"
	},
	"age": 32,
	"hobbies": ["fishing","yoga"]
}`

func TestParseFigure1(t *testing.T) {
	v, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse(figure1): %v", err)
	}
	if v.Kind() != Object {
		t.Fatalf("kind = %v, want object", v.Kind())
	}
	name, ok := v.Member("name")
	if !ok || name.Kind() != Object {
		t.Fatalf("name member missing or not object")
	}
	first, ok := name.Member("first")
	if !ok || first.Str() != "John" {
		t.Errorf("name.first = %v, want John", first)
	}
	age, ok := v.Member("age")
	if !ok || age.Num() != 32 {
		t.Errorf("age = %v, want 32", age)
	}
	hobbies, ok := v.Member("hobbies")
	if !ok || hobbies.Kind() != Array || hobbies.Len() != 2 {
		t.Fatalf("hobbies = %v, want 2-element array", hobbies)
	}
	second, ok := hobbies.Elem(1)
	if !ok || second.Str() != "yoga" {
		t.Errorf("hobbies[1] = %v, want yoga", second)
	}
	last, ok := hobbies.Elem(-1)
	if !ok || last.Str() != "yoga" {
		t.Errorf("hobbies[-1] = %v, want yoga", last)
	}
	if _, ok := hobbies.Elem(2); ok {
		t.Errorf("hobbies[2] unexpectedly present")
	}
	if v.Size() != 8 {
		t.Errorf("Size = %d, want 8 (as counted in §3.1 plus array nodes)", v.Size())
	}
	if v.Height() != 2 {
		t.Errorf("Height = %d, want 2", v.Height())
	}
}

func TestParseScalars(t *testing.T) {
	tests := []struct {
		in   string
		kind Kind
	}{
		{`0`, Number},
		{`42`, Number},
		{`18446744073709551615`, Number},
		{`""`, String},
		{`"hello"`, String},
		{`"A\n\t\\\""`, String},
		{`"😀"`, String}, // surrogate pair
		{`{}`, Object},
		{`[]`, Array},
		{`[[],{},0,""]`, Array},
	}
	for _, tc := range tests {
		v, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if v.Kind() != tc.kind {
			t.Errorf("Parse(%q).Kind = %v, want %v", tc.in, v.Kind(), tc.kind)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	v := MustParse(`"ABé"`)
	if v.Str() != "ABé" {
		t.Errorf("got %q, want ABé", v.Str())
	}
	if got := MustParse(`"😀"`).Str(); got != "😀" {
		t.Errorf("surrogate pair = %q, want 😀", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		in      string
		wantSub string
	}{
		{``, "unexpected end"},
		{`tru`, "boolean"},
		{`true`, "boolean"},
		{`false`, "boolean"},
		{`null`, "null"},
		{`-1`, "negative"},
		{`1.5`, "fractional"},
		{`1e3`, "fractional"},
		{`01`, "leading zero"},
		{`{"a":1,"a":2}`, "duplicate key"},
		{`{"a":1`, "unterminated object"},
		{`[1,2`, "unterminated array"},
		{`"abc`, "unterminated string"},
		{`{"a" 1}`, "want ':'"},
		{`{1:2}`, "want object key"},
		{`[1 2]`, "want ','"},
		{`{} {}`, "trailing"},
		{`"\q"`, "invalid escape"},
		{`"\u00g0"`, "invalid hex"},
		{"\"a\x01b\"", "control character"},
		{`18446744073709551616`, "out of range"},
	}
	for _, tc := range tests {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.wantSub)
		}
	}
}

func TestObjDuplicateKey(t *testing.T) {
	_, err := Obj(Member{"a", Num(1)}, Member{"a", Num(2)})
	if err == nil {
		t.Fatal("Obj with duplicate keys: expected error")
	}
}

func TestEqualUnorderedObjects(t *testing.T) {
	a := MustParse(`{"x":1,"y":[2,3],"z":{"a":"b"}}`)
	b := MustParse(`{"z":{"a":"b"},"y":[2,3],"x":1}`)
	if !Equal(a, b) {
		t.Error("objects differing only in member order must be Equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("hashes must agree for reordered objects")
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ: %s vs %s", a.Canonical(), b.Canonical())
	}
}

func TestEqualArraysAreOrdered(t *testing.T) {
	a := MustParse(`[1,2]`)
	b := MustParse(`[2,1]`)
	if Equal(a, b) {
		t.Error("arrays with different element order must not be Equal")
	}
}

func TestNotEqual(t *testing.T) {
	cases := [][2]string{
		{`1`, `2`},
		{`1`, `"1"`},
		{`{}`, `[]`},
		{`{"a":1}`, `{"a":2}`},
		{`{"a":1}`, `{"b":1}`},
		{`{"a":1}`, `{"a":1,"b":2}`},
		{`[1]`, `[1,1]`},
		{`[[1]]`, `[[2]]`},
	}
	for _, c := range cases {
		a, b := MustParse(c[0]), MustParse(c[1])
		if Equal(a, b) {
			t.Errorf("Equal(%s, %s) = true, want false", c[0], c[1])
		}
		if EqualNaive(a, b) {
			t.Errorf("EqualNaive(%s, %s) = true, want false", c[0], c[1])
		}
	}
}

// RandomValue builds a pseudorandom value with roughly the given number of
// nodes; exported via test helper for use by quick checks here.
func randomValue(r *rand.Rand, depth int) *Value {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return Num(uint64(r.Intn(100)))
		}
		return Str(randKey(r))
	}
	switch r.Intn(4) {
	case 0:
		return Num(uint64(r.Intn(1000)))
	case 1:
		return Str(randKey(r))
	case 2:
		n := r.Intn(4)
		elems := make([]*Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return Arr(elems...)
	default:
		n := r.Intn(4)
		members := make([]Member, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := randKey(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			members = append(members, Member{k, randomValue(r, depth-1)})
		}
		return MustObj(members...)
	}
}

func randKey(r *rand.Rand) string {
	letters := "abcdefgh"
	n := 1 + r.Intn(5)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[r.Intn(len(letters))])
	}
	return sb.String()
}

// Generate implements quick.Generator so random Values can be drawn by
// testing/quick property checks.
func (*Value) Generate(r *rand.Rand, size int) reflect.Value {
	d := size % 5
	return reflect.ValueOf(randomValue(r, d))
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(v *Value) bool {
		parsed, err := Parse(v.String())
		if err != nil {
			t.Logf("reparse error on %s: %v", v, err)
			return false
		}
		return Equal(v, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalRoundTrip(t *testing.T) {
	f := func(v *Value) bool {
		parsed, err := Parse(v.Canonical())
		return err == nil && Equal(v, parsed) && parsed.Canonical() == v.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndentRoundTrip(t *testing.T) {
	f := func(v *Value) bool {
		parsed, err := Parse(v.Indent("  "))
		return err == nil && Equal(v, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexiveAndHash(t *testing.T) {
	f := func(v *Value) bool {
		return Equal(v, v) && v.Hash() == MustParse(v.String()).Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualMatchesNaive(t *testing.T) {
	f := func(a, b *Value) bool {
		return Equal(a, b) == EqualNaive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSizeHeight(t *testing.T) {
	f := func(v *Value) bool {
		return v.Size() >= 1 && v.Height() >= 0 && v.Height() < v.Size()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringEscaping(t *testing.T) {
	v := Str("a\"b\\c\nd\te")
	got := v.String()
	want := `"a\"b\\c\nd\te"`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if !Equal(MustParse(got), v) {
		t.Error("escaped string does not round-trip")
	}
}

func TestMemberOnNonObjectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Member on array should panic")
		}
	}()
	Arr().Member("x")
}

func TestKeysAndMembers(t *testing.T) {
	v := MustParse(`{"b":1,"a":2}`)
	if got := v.Keys(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Keys = %v (insertion order expected)", got)
	}
	if len(v.Members()) != 2 || v.Members()[0].Key != "b" {
		t.Errorf("Members = %v", v.Members())
	}
	if Num(1).Keys() != nil || Num(1).Members() != nil || Num(1).Elems() != nil {
		t.Error("scalar accessors should return nil slices")
	}
}

func TestKindPredicatesAndAccessors(t *testing.T) {
	n := Num(7)
	s := Str("x")
	o := MustParse(`{"a":1}`)
	a := MustParse(`[1,2]`)
	if !n.IsNumber() || n.IsString() || n.IsObject() || n.IsArray() {
		t.Error("Num kind predicates wrong")
	}
	if !s.IsString() || s.IsNumber() {
		t.Error("Str kind predicates wrong")
	}
	if !o.IsObject() || o.IsArray() {
		t.Error("Obj kind predicates wrong")
	}
	if !a.IsArray() || a.IsObject() {
		t.Error("Arr kind predicates wrong")
	}
	if o.Len() != 1 || a.Len() != 2 {
		t.Errorf("Len: obj=%d arr=%d", o.Len(), a.Len())
	}
	if n.Len() != 0 {
		t.Errorf("Len of a leaf = %d, want 0", n.Len())
	}
	if len(a.Elems()) != 2 || len(n.Elems()) != 0 {
		t.Error("Elems wrong")
	}
	for _, k := range []Kind{Number, String, Object, Array} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestParseBytesAndPrefix(t *testing.T) {
	v, err := ParseBytes([]byte(`{"a": 1}`))
	if err != nil || !v.IsObject() {
		t.Fatalf("ParseBytes: %v %v", v, err)
	}
	if _, err := ParseBytes([]byte(`{"a": }`)); err == nil {
		t.Fatal("ParseBytes must reject malformed input")
	}
	// ParsePrefix stops after the first value and reports the offset of
	// the remaining input.
	input := `[1,2] trailing`
	v, off, err := ParsePrefix(input)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("prefix value = %s", v)
	}
	if strings.TrimSpace(input[off:]) != "trailing" {
		t.Fatalf("rest = %q", input[off:])
	}
}

func TestUnicodeEscapes(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`"A"`, "A"},
		{`"é"`, "é"},
		{`"é"`, "é"},
		{`"😀"`, "😀"},
	}
	for _, c := range cases {
		v, err := Parse(c.in)
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if v.Str() != c.want {
			t.Errorf("%s: got %q want %q", c.in, v.Str(), c.want)
		}
	}
	for _, bad := range []string{`"\u12"`, `"\ug000"`, `"\ud800"`, `"\ud800A"`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%s: expected error", bad)
		}
	}
}
