package jsonval

import (
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// SyntaxError describes a parse failure with the byte offset at which it
// was detected.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsonval: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a JSON document per the paper's restricted grammar:
// objects, arrays, strings and natural numbers. It rejects duplicate
// object keys (the paper's key-uniqueness requirement), negative and
// fractional numbers, and the literals true, false and null, each with a
// descriptive error. Trailing non-whitespace input is an error.
func Parse(input string) (*Value, error) {
	p := &parser{in: input}
	p.skipSpace()
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected trailing input")
	}
	return v, nil
}

// ParseBytes is Parse over a byte slice.
func ParseBytes(input []byte) (*Value, error) { return Parse(string(input)) }

// ParsePrefix parses a single JSON value at the start of input and
// returns it together with the number of bytes consumed. Unlike Parse it
// permits trailing input, so callers can embed JSON literals inside a
// larger syntax (the JNL and JSON Schema parsers do this).
func ParsePrefix(input string) (*Value, int, error) {
	p := &parser{in: input}
	p.skipSpace()
	v, err := p.value()
	if err != nil {
		return nil, 0, err
	}
	return v, p.pos, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(input string) *Value {
	v, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return v
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) value() (*Value, error) {
	if p.pos >= len(p.in) {
		return nil, p.errf("unexpected end of input, want a value")
	}
	switch c := p.in[p.pos]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		s, err := p.string()
		if err != nil {
			return nil, err
		}
		return Str(s), nil
	case c >= '0' && c <= '9':
		return p.number()
	case c == '-':
		return nil, p.errf("negative numbers are outside the paper's value model (only naturals)")
	case c == 't' || c == 'f':
		return nil, p.errf("booleans are outside the paper's value model")
	case c == 'n':
		return nil, p.errf("null is outside the paper's value model")
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

func (p *parser) object() (*Value, error) {
	start := p.pos
	p.pos++ // consume '{'
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '}' {
		p.pos++
		return MustObj(), nil
	}
	var members []Member
	seen := make(map[string]struct{})
	for {
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != '"' {
			return nil, p.errf("want object key string")
		}
		key, err := p.string()
		if err != nil {
			return nil, err
		}
		if _, dup := seen[key]; dup {
			return nil, &SyntaxError{Offset: start, Msg: fmt.Sprintf("duplicate key %q in object", key)}
		}
		seen[key] = struct{}{}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ':' {
			return nil, p.errf("want ':' after object key")
		}
		p.pos++
		p.skipSpace()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		members = append(members, Member{Key: key, Value: v})
		p.skipSpace()
		if p.pos >= len(p.in) {
			return nil, p.errf("unterminated object")
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			obj, err := Obj(members...)
			if err != nil {
				return nil, err
			}
			return obj, nil
		default:
			return nil, p.errf("want ',' or '}' in object, got %q", p.in[p.pos])
		}
	}
}

func (p *parser) array() (*Value, error) {
	p.pos++ // consume '['
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ']' {
		p.pos++
		return Arr(), nil
	}
	var elems []*Value
	for {
		p.skipSpace()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.pos >= len(p.in) {
			return nil, p.errf("unterminated array")
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return Arr(elems...), nil
		default:
			return nil, p.errf("want ',' or ']' in array, got %q", p.in[p.pos])
		}
	}
}

func (p *parser) number() (*Value, error) {
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '.', 'e', 'E':
			return nil, p.errf("fractional and exponent numbers are outside the paper's value model (only naturals)")
		}
	}
	lit := p.in[start:p.pos]
	if len(lit) > 1 && lit[0] == '0' {
		return nil, &SyntaxError{Offset: start, Msg: "leading zeros are not permitted in numbers"}
	}
	n, err := strconv.ParseUint(lit, 10, 64)
	if err != nil {
		return nil, &SyntaxError{Offset: start, Msg: "number out of range: " + lit}
	}
	return Num(n), nil
}

func (p *parser) string() (string, error) {
	p.pos++ // consume opening quote
	start := p.pos
	// Fast path: no escapes, ASCII-printable content.
	for i := p.pos; i < len(p.in); i++ {
		c := p.in[i]
		if c == '"' {
			s := p.in[start:i]
			p.pos = i + 1
			return s, nil
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			break
		}
	}
	var sb []byte
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == '"':
			p.pos++
			return string(sb), nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return "", p.errf("unterminated escape")
			}
			esc := p.in[p.pos]
			p.pos++
			switch esc {
			case '"':
				sb = append(sb, '"')
			case '\\':
				sb = append(sb, '\\')
			case '/':
				sb = append(sb, '/')
			case 'b':
				sb = append(sb, '\b')
			case 'f':
				sb = append(sb, '\f')
			case 'n':
				sb = append(sb, '\n')
			case 'r':
				sb = append(sb, '\r')
			case 't':
				sb = append(sb, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// Strict surrogate handling (matching the streaming
					// tokenizer): a high surrogate must be followed by a
					// low one; anything else is rejected rather than
					// replaced.
					if p.pos+1 < len(p.in) && p.in[p.pos] == '\\' && p.in[p.pos+1] == 'u' {
						p.pos += 2
						r2, err := p.hex4()
						if err != nil {
							return "", err
						}
						r = utf16.DecodeRune(r, r2)
						if r == utf8.RuneError {
							return "", p.errf("invalid surrogate pair in \\u escape")
						}
					} else {
						return "", p.errf("unpaired surrogate in \\u escape")
					}
				}
				sb = utf8.AppendRune(sb, r)
			default:
				return "", p.errf("invalid escape \\%c", esc)
			}
		case c < 0x20:
			return "", p.errf("raw control character in string")
		default:
			r, size := utf8.DecodeRuneInString(p.in[p.pos:])
			sb = utf8.AppendRune(sb, r)
			p.pos += size
		}
	}
	return "", p.errf("unterminated string")
}

func (p *parser) hex4() (rune, error) {
	if p.pos+4 > len(p.in) {
		return 0, p.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.in[p.pos+i]
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, p.errf("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return r, nil
}
