// Package translate implements the Theorem 2 translations between the
// JSON navigational logic (JNL) and the JSON schema logic (JSL): the two
// logics are equivalent on the common fragment — non-deterministic,
// non-recursive JNL without the binary equality EQ(α,β) on one side, and
// JSL whose only node test is ~(A) on the other.
//
// JSLToJNL is the polynomial direction of the theorem. JNLToJSL is
// implemented in continuation-passing style: a binary formula α is
// translated relative to a continuation K as "some α-successor satisfies
// K", which replaces the paper's explicit top-symbol (⊤_φ, ⊤*)
// substitution machinery and keeps this direction linear as well
// (binary JNL formulas have no union operator, so every top symbol
// occurs exactly once and substitution never duplicates).
package translate

import (
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
)

// JSLToJNL translates a JSL formula into an equivalent unary JNL
// formula. Only the Theorem 2 fragment is accepted: boolean structure,
// ⊤, the ~(A) node test, and the four modalities. Other node tests
// (kinds, Pattern, Min, …) have no JNL counterpart and yield an error,
// as do references.
func JSLToJNL(f jsl.Formula) (jnl.Unary, error) {
	switch t := f.(type) {
	case jsl.True:
		return jnl.True{}, nil
	case jsl.Not:
		inner, err := JSLToJNL(t.Inner)
		if err != nil {
			return nil, err
		}
		return jnl.Not{Inner: inner}, nil
	case jsl.And:
		l, err := JSLToJNL(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := JSLToJNL(t.Right)
		if err != nil {
			return nil, err
		}
		return jnl.And{Left: l, Right: r}, nil
	case jsl.Or:
		l, err := JSLToJNL(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := JSLToJNL(t.Right)
		if err != nil {
			return nil, err
		}
		return jnl.Or{Left: l, Right: r}, nil
	case jsl.EqDoc:
		// ~(A) becomes EQ(ε, A).
		return jnl.EQDoc{Path: jnl.Epsilon{}, Doc: t.Doc}, nil
	case jsl.DiamondKey:
		inner, err := JSLToJNL(t.Inner)
		if err != nil {
			return nil, err
		}
		return jnl.Exists{Path: jnl.Concat{Left: axisForKey(t), Right: jnl.Test{Inner: inner}}}, nil
	case jsl.DiamondIdx:
		inner, err := JSLToJNL(t.Inner)
		if err != nil {
			return nil, err
		}
		return jnl.Exists{Path: jnl.Concat{Left: axisForIdx(t.Lo, t.Hi), Right: jnl.Test{Inner: inner}}}, nil
	case jsl.BoxKey:
		// ◻_e φ ≡ ¬◇_e ¬φ.
		return JSLToJNL(jsl.Not{Inner: jsl.DiamondKey{Re: t.Re, Word: t.Word, IsWord: t.IsWord, Inner: jsl.Not{Inner: t.Inner}}})
	case jsl.BoxIdx:
		return JSLToJNL(jsl.Not{Inner: jsl.DiamondIdx{Lo: t.Lo, Hi: t.Hi, Inner: jsl.Not{Inner: t.Inner}}})
	default:
		return nil, fmt.Errorf("translate: %T is outside the Theorem 2 fragment (JSL node tests other than ~(A) have no JNL counterpart)", f)
	}
}

func axisForKey(t jsl.DiamondKey) jnl.Binary {
	if t.IsWord {
		return jnl.KeyAxis{Word: t.Word}
	}
	return jnl.RegexAxis{Re: t.Re}
}

func axisForIdx(lo, hi int) jnl.Binary {
	if lo == hi {
		return jnl.IndexAxis{Index: lo}
	}
	j := hi
	if hi == jsl.Inf {
		j = jnl.Inf
	}
	return jnl.RangeAxis{Lo: lo, Hi: j}
}

// JNLToJSL translates a unary JNL formula into an equivalent JSL
// formula. Only the Theorem 2 fragment is accepted: EQ(α,β) and the
// Kleene star (recursive JNL) are rejected — JSL cannot express
// subtree-to-subtree comparison, and non-recursive JSL cannot express
// unbounded navigation.
func JNLToJSL(u jnl.Unary) (jsl.Formula, error) {
	switch t := u.(type) {
	case jnl.True:
		return jsl.True{}, nil
	case jnl.Not:
		inner, err := JNLToJSL(t.Inner)
		if err != nil {
			return nil, err
		}
		return jsl.Not{Inner: inner}, nil
	case jnl.And:
		l, err := JNLToJSL(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := JNLToJSL(t.Right)
		if err != nil {
			return nil, err
		}
		return jsl.And{Left: l, Right: r}, nil
	case jnl.Or:
		l, err := JNLToJSL(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := JNLToJSL(t.Right)
		if err != nil {
			return nil, err
		}
		return jsl.Or{Left: l, Right: r}, nil
	case jnl.Exists:
		return pathToJSL(t.Path, jsl.True{})
	case jnl.EQDoc:
		return pathToJSL(t.Path, jsl.EqDoc{Doc: t.Doc})
	case jnl.EQPaths:
		return nil, fmt.Errorf("translate: EQ(α,β) is outside the Theorem 2 fragment (JSL cannot compare two subtrees)")
	default:
		return nil, fmt.Errorf("translate: unknown JNL unary %T", u)
	}
}

// pathToJSL translates binary α with continuation K: the result holds at
// node n iff some α-successor of n satisfies K.
func pathToJSL(b jnl.Binary, k jsl.Formula) (jsl.Formula, error) {
	switch t := b.(type) {
	case jnl.Epsilon:
		return k, nil
	case jnl.KeyAxis:
		return jsl.DiaWord(t.Word, k), nil
	case jnl.RegexAxis:
		return jsl.DiaRe(t.Re, k), nil
	case jnl.IndexAxis:
		if t.Index < 0 {
			return nil, fmt.Errorf("translate: negative array index %d has no JSL counterpart (JSL indices are absolute)", t.Index)
		}
		return jsl.DiaAt(t.Index, k), nil
	case jnl.RangeAxis:
		hi := t.Hi
		if hi == jnl.Inf {
			hi = jsl.Inf
		}
		return jsl.DiamondIdx{Lo: t.Lo, Hi: hi, Inner: k}, nil
	case jnl.Test:
		inner, err := JNLToJSL(t.Inner)
		if err != nil {
			return nil, err
		}
		return jsl.And{Left: inner, Right: k}, nil
	case jnl.Concat:
		right, err := pathToJSL(t.Right, k)
		if err != nil {
			return nil, err
		}
		return pathToJSL(t.Left, right)
	case jnl.Alt:
		// A union of paths duplicates the continuation — this is the
		// source of the exponential blowup noted after Theorem 2.
		l, err := pathToJSL(t.Left, k)
		if err != nil {
			return nil, err
		}
		r, err := pathToJSL(t.Right, k)
		if err != nil {
			return nil, err
		}
		return jsl.Or{Left: l, Right: r}, nil
	case jnl.Star:
		return nil, fmt.Errorf("translate: Kleene star is outside the Theorem 2 fragment (non-recursive JSL)")
	default:
		return nil, fmt.Errorf("translate: unknown JNL binary %T", b)
	}
}
