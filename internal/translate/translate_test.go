package translate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func TestJSLToJNLExamples(t *testing.T) {
	cases := []struct {
		jslSrc string
		doc    string
		want   bool
	}{
		{`some("name", eq("Sue"))`, `{"name":"Sue"}`, true},
		{`some("name", eq("Sue"))`, `{"name":"Bob"}`, false},
		{`all(~".*", eq(1))`, `{"a":1,"b":1}`, true},
		{`all(~".*", eq(1))`, `{"a":1,"b":2}`, false},
		{`some([0:], eq("yoga"))`, `["fishing","yoga"]`, true},
		{`some([0:], eq("yoga"))`, `["fishing"]`, false},
		{`eq({"x":[1]})`, `{"x":[1]}`, true},
		{`!some("a", true) || some("a", eq(2))`, `{"a":2}`, true},
	}
	for _, tc := range cases {
		f := jsl.MustParse(tc.jslSrc)
		u, err := JSLToJNL(f)
		if err != nil {
			t.Errorf("JSLToJNL(%s): %v", tc.jslSrc, err)
			continue
		}
		tr := jsontree.MustParse(tc.doc)
		if got := jnl.Holds(tr, u, tr.Root()); got != tc.want {
			t.Errorf("%s on %s via JNL: got %v want %v (JNL: %s)", tc.jslSrc, tc.doc, got, tc.want, jnl.String(u))
		}
	}
}

func TestJNLToJSLExamples(t *testing.T) {
	cases := []struct {
		jnlSrc string
		doc    string
		want   bool
	}{
		{`[/name/first]`, `{"name":{"first":"x"}}`, true},
		{`[/name/first]`, `{"name":{}}`, false},
		{`eq(/age, 32)`, `{"age":32}`, true},
		{`eq(/age, 32)`, `{"age":33}`, false},
		{`[/~"h.*" /[0:] <eq(eps, "yoga")>]`, `{"hobbies":["yoga"]}`, true},
		{`[/~"h.*" /[0:] <eq(eps, "golf")>]`, `{"hobbies":["yoga"]}`, false},
		{`[/a <[/b]> /c]`, `{"a":{"b":1,"c":2}}`, true},
		{`[/a <[/b]> /c]`, `{"a":{"c":2}}`, false},
	}
	for _, tc := range cases {
		u := jnl.MustParse(tc.jnlSrc)
		f, err := JNLToJSL(u)
		if err != nil {
			t.Errorf("JNLToJSL(%s): %v", tc.jnlSrc, err)
			continue
		}
		tr := jsontree.MustParse(tc.doc)
		got, err := jsl.Holds(tr, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s on %s via JSL: got %v want %v (JSL: %s)", tc.jnlSrc, tc.doc, got, tc.want, jsl.String(f))
		}
	}
}

func TestOutsideFragmentRejected(t *testing.T) {
	if _, err := JNLToJSL(jnl.MustParse(`eq(/a, /b)`)); err == nil {
		t.Error("EQ(α,β) must be rejected")
	}
	if _, err := JNLToJSL(jnl.MustParse(`[(/a)*]`)); err == nil {
		t.Error("Kleene star must be rejected")
	}
	if _, err := JSLToJNL(jsl.MustParse(`string`)); err == nil {
		t.Error("kind node tests must be rejected")
	}
	if _, err := JSLToJNL(jsl.MustParse(`unique`)); err == nil {
		t.Error("Unique must be rejected")
	}
	if _, err := JSLToJNL(jsl.MustParse(`min(3)`)); err == nil {
		t.Error("Min must be rejected")
	}
}

// Generators restricted to the Theorem 2 fragment.

func fragmentJSL(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsl.True{}
		}
		return jsl.EqDoc{Doc: fragmentDoc(r, 1)}
	}
	switch r.Intn(8) {
	case 0:
		return jsl.Not{Inner: fragmentJSL(r, depth-1)}
	case 1:
		return jsl.And{Left: fragmentJSL(r, depth-1), Right: fragmentJSL(r, depth-1)}
	case 2:
		return jsl.Or{Left: fragmentJSL(r, depth-1), Right: fragmentJSL(r, depth-1)}
	case 3:
		return jsl.DiaWord(fkey(r), fragmentJSL(r, depth-1))
	case 4:
		return jsl.BoxRe(relang.MustCompile(fkey(r)+".*"), fragmentJSL(r, depth-1))
	case 5:
		return jsl.DiamondIdx{Lo: r.Intn(2), Hi: jsl.Inf, Inner: fragmentJSL(r, depth-1)}
	case 6:
		return jsl.BoxIdx{Lo: 0, Hi: r.Intn(3), Inner: fragmentJSL(r, depth-1)}
	default:
		return fragmentJSL(r, 0)
	}
}

func fragmentJNL(r *rand.Rand, depth int) jnl.Unary {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return jnl.True{}
		case 1:
			return jnl.Exists{Path: fragmentPath(r, 1)}
		default:
			return jnl.EQDoc{Path: fragmentPath(r, 1), Doc: fragmentDoc(r, 1)}
		}
	}
	switch r.Intn(6) {
	case 0:
		return jnl.Not{Inner: fragmentJNL(r, depth-1)}
	case 1:
		return jnl.And{Left: fragmentJNL(r, depth-1), Right: fragmentJNL(r, depth-1)}
	case 2:
		return jnl.Or{Left: fragmentJNL(r, depth-1), Right: fragmentJNL(r, depth-1)}
	case 3:
		return jnl.Exists{Path: fragmentPath(r, depth)}
	case 4:
		return jnl.EQDoc{Path: fragmentPath(r, depth), Doc: fragmentDoc(r, 1)}
	default:
		return fragmentJNL(r, 0)
	}
}

func fragmentPath(r *rand.Rand, depth int) jnl.Binary {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return jnl.Epsilon{}
		case 1:
			return jnl.KeyAxis{Word: fkey(r)}
		case 2:
			return jnl.RegexAxis{Re: relang.MustCompile(fkey(r) + ".*")}
		default:
			return jnl.IndexAxis{Index: r.Intn(3)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return jnl.Concat{Left: fragmentPath(r, depth-1), Right: fragmentPath(r, depth-1)}
	case 1:
		return jnl.Test{Inner: fragmentJNL(r, depth-1)}
	default:
		return jnl.RangeAxis{Lo: r.Intn(2), Hi: jnl.Inf}
	}
}

func fkey(r *rand.Rand) string { return string(rune('a' + r.Intn(3))) }

func fragmentDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(4)))
		}
		return jsonval.Str(fkey(r))
	}
	n := r.Intn(3)
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = fragmentDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fkey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: fragmentDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

type t2Case struct {
	jslF jsl.Formula
	jnlF jnl.Unary
	doc  *jsonval.Value
}

func (t2Case) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(t2Case{fragmentJSL(r, 2), fragmentJNL(r, 2), fragmentDoc(r, 3)})
}

// TestTheorem2Equivalence checks both translation directions preserve
// semantics on random fragment formulas and documents.
func TestTheorem2Equivalence(t *testing.T) {
	f := func(c t2Case) bool {
		tr := jsontree.FromValue(c.doc)
		// JSL → JNL.
		u, err := JSLToJNL(c.jslF)
		if err != nil {
			t.Logf("JSLToJNL: %v", err)
			return false
		}
		wantJSL, err := jsl.Holds(tr, c.jslF)
		if err != nil {
			return false
		}
		if jnl.Holds(tr, u, tr.Root()) != wantJSL {
			t.Logf("JSL→JNL mismatch on %s / doc %s", jsl.String(c.jslF), c.doc)
			return false
		}
		// JNL → JSL.
		g, err := JNLToJSL(c.jnlF)
		if err != nil {
			t.Logf("JNLToJSL: %v", err)
			return false
		}
		wantJNL := jnl.Holds(tr, c.jnlF, tr.Root())
		gotJSL, err := jsl.Holds(tr, g)
		if err != nil {
			return false
		}
		if gotJSL != wantJNL {
			t.Logf("JNL→JSL mismatch on %s / doc %s (JSL: %s)", jnl.String(c.jnlF), c.doc, jsl.String(g))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTranslationSizeLinear documents that the continuation-passing
// implementation of Theorem 2's JNL→JSL direction stays linear on
// composition chains (the paper's substitution-based procedure is
// exponential in the worst case; with no binary union in JNL the
// continuation is never duplicated).
func TestTranslationSizeLinear(t *testing.T) {
	path := jnl.Binary(jnl.Epsilon{})
	for i := 0; i < 40; i++ {
		path = jnl.Concat{Left: jnl.Test{Inner: jnl.Or{
			Left:  jnl.Exists{Path: jnl.KeyAxis{Word: "a"}},
			Right: jnl.Exists{Path: jnl.KeyAxis{Word: "b"}},
		}}, Right: path}
	}
	u := jnl.Exists{Path: path}
	f, err := JNLToJSL(u)
	if err != nil {
		t.Fatal(err)
	}
	inSize := jnl.Size(u)
	outSize := jsl.Size(f)
	if outSize > 4*inSize {
		t.Errorf("translation blew up: |JNL|=%d |JSL|=%d", inSize, outSize)
	}
}

// TestJNLToJSLPathConstructors covers every binary constructor of the
// Theorem 2 fragment, checked semantically over sample documents.
func TestJNLToJSLPathConstructors(t *testing.T) {
	docs := []string{
		`{"a":{"b":1},"cd":[5,6,7]}`,
		`{"cd":[{"x":1}]}`,
		`[]`, `7`, `{"a":1}`,
	}
	paths := []jnl.Binary{
		jnl.Epsilon{},
		jnl.Key("a"),
		jnl.Rx("c."),
		jnl.At(1),
		jnl.Range(0, 2),
		jnl.RangeAxis{Lo: 1, Hi: jnl.Inf},
		jnl.Concat{Left: jnl.Key("a"), Right: jnl.Key("b")},
		jnl.Alt{Left: jnl.Key("a"), Right: jnl.Rx("c.*")},
		jnl.Concat{Left: jnl.Test{Inner: jnl.Exists{Path: jnl.Key("a")}}, Right: jnl.Key("a")},
	}
	for _, p := range paths {
		u := jnl.Exists{Path: p}
		f, err := JNLToJSL(u)
		if err != nil {
			t.Errorf("%s: %v", jnl.StringBinary(p), err)
			continue
		}
		for _, d := range docs {
			tree := jsontree.MustParse(d)
			want := jnl.Holds(tree, u, tree.Root())
			got, err := jsl.Holds(tree, f)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("path %s over %s: JSL %v, JNL %v", jnl.StringBinary(p), d, got, want)
			}
		}
	}
}

func TestJNLToJSLRejections(t *testing.T) {
	for _, u := range []jnl.Unary{
		jnl.EQPaths{Left: jnl.Key("a"), Right: jnl.Key("b")},
		jnl.Exists{Path: jnl.Star{Inner: jnl.Key("a")}},
		jnl.Exists{Path: jnl.At(-1)},
	} {
		if _, err := JNLToJSL(u); err == nil {
			t.Errorf("%s: expected rejection", jnl.String(u))
		}
	}
}
