// Package projection implements the second argument of MongoDB's find
// function, the JSON-to-JSON transformation the paper's §6 leaves as
// future work: given a projection document, selected subtrees of each
// filtered input document are kept (inclusion mode) or removed
// (exclusion mode).
//
// A projection document maps dotted field paths to 1 (include) or 0
// (exclude). MongoDB forbids mixing the two modes in one projection;
// this implementation enforces the same rule. Projections compose with
// the mongoq filters to form the full find(filter, projection) surface
// of §4.1.
package projection

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
)

// Mode says whether a projection keeps only the named paths or keeps
// everything but them.
type Mode uint8

// Projection modes.
const (
	// Include keeps only the named paths (plus their ancestors).
	Include Mode = iota
	// Exclude keeps everything except the named paths.
	Exclude
)

func (m Mode) String() string {
	if m == Include {
		return "include"
	}
	return "exclude"
}

// Projection is a compiled projection document.
type Projection struct {
	source *jsonval.Value
	mode   Mode
	root   *pathTrie
}

// pathTrie is the trie of projected paths; a terminal node marks a
// named path.
type pathTrie struct {
	terminal bool
	children map[string]*pathTrie
}

func newTrie() *pathTrie { return &pathTrie{children: map[string]*pathTrie{}} }

func (t *pathTrie) insert(segs []string) {
	if len(segs) == 0 {
		t.terminal = true
		return
	}
	child, ok := t.children[segs[0]]
	if !ok {
		child = newTrie()
		t.children[segs[0]] = child
	}
	child.insert(segs[1:])
}

// Parse parses a projection document from JSON text and compiles it.
func Parse(input string) (*Projection, error) {
	v, err := jsonval.Parse(input)
	if err != nil {
		return nil, err
	}
	return FromValue(v)
}

// MustParse is Parse but panics on error.
func MustParse(input string) *Projection {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

// FromValue compiles a projection document: an object mapping dotted
// paths to 1 (include) or 0 (exclude), uniformly.
func FromValue(v *jsonval.Value) (*Projection, error) {
	if !v.IsObject() {
		return nil, fmt.Errorf("projection: a projection must be an object, got %s", v.Kind())
	}
	p := &Projection{source: v, root: newTrie()}
	modeSet := false
	for _, m := range v.Members() {
		if !m.Value.IsNumber() || m.Value.Num() > 1 {
			return nil, fmt.Errorf("projection: field %q must map to 0 or 1, got %s", m.Key, m.Value)
		}
		mode := Exclude
		if m.Value.Num() == 1 {
			mode = Include
		}
		if modeSet && mode != p.mode {
			return nil, fmt.Errorf("projection: cannot mix include and exclude fields (%q)", m.Key)
		}
		p.mode = mode
		modeSet = true
		segs := strings.Split(m.Key, ".")
		for _, s := range segs {
			if s == "" {
				return nil, fmt.Errorf("projection: empty path segment in %q", m.Key)
			}
		}
		p.root.insert(segs)
	}
	if !modeSet {
		// The empty projection {} keeps the document unchanged.
		p.mode = Exclude
	}
	return p, nil
}

// Mode returns the projection's mode.
func (p *Projection) Mode() Mode { return p.mode }

// String renders the source projection document.
func (p *Projection) String() string { return p.source.String() }

// Apply projects one document. The result shares value nodes with the
// input (values are immutable) but never mutates it. Arrays reindex
// after positional selection or removal: projecting "b.1" out of a
// two-element array leaves a one-element array, so positional
// projections are not idempotent (matching MongoDB's positional
// caveats).
func (p *Projection) Apply(doc *jsonval.Value) *jsonval.Value {
	if p.mode == Include {
		out := includeProject(doc, p.root)
		if out == nil {
			// Nothing selected: MongoDB returns the empty document.
			return jsonval.MustObj()
		}
		return out
	}
	return excludeProject(doc, p.root)
}

// includeProject returns the part of doc selected by the trie, or nil
// when nothing below matches.
func includeProject(doc *jsonval.Value, t *pathTrie) *jsonval.Value {
	if t.terminal {
		return doc
	}
	switch {
	case doc.IsObject():
		var members []jsonval.Member
		for _, m := range doc.Members() {
			child, ok := t.children[m.Key]
			if !ok {
				continue
			}
			if sub := includeProject(m.Value, child); sub != nil {
				members = append(members, jsonval.Member{Key: m.Key, Value: sub})
			}
		}
		if len(members) == 0 {
			return nil
		}
		return jsonval.MustObj(members...)
	case doc.IsArray():
		// Numeric trie segments address array positions; MongoDB's
		// positional projection is approximated by index selection.
		var elems []*jsonval.Value
		for i, e := range doc.Elems() {
			child, ok := t.children[strconv.Itoa(i)]
			if !ok {
				continue
			}
			if sub := includeProject(e, child); sub != nil {
				elems = append(elems, sub)
			}
		}
		if len(elems) == 0 {
			return nil
		}
		return jsonval.Arr(elems...)
	default:
		return nil
	}
}

// excludeProject returns doc with the trie's terminal paths removed.
func excludeProject(doc *jsonval.Value, t *pathTrie) *jsonval.Value {
	if t.terminal {
		return nil
	}
	if len(t.children) == 0 {
		return doc
	}
	switch {
	case doc.IsObject():
		var members []jsonval.Member
		for _, m := range doc.Members() {
			child, ok := t.children[m.Key]
			if !ok {
				members = append(members, m)
				continue
			}
			if sub := excludeProject(m.Value, child); sub != nil {
				members = append(members, jsonval.Member{Key: m.Key, Value: sub})
			}
		}
		return jsonval.MustObj(members...)
	case doc.IsArray():
		var elems []*jsonval.Value
		for i, e := range doc.Elems() {
			child, ok := t.children[strconv.Itoa(i)]
			if !ok {
				elems = append(elems, e)
				continue
			}
			if sub := excludeProject(e, child); sub != nil {
				elems = append(elems, sub)
			}
		}
		return jsonval.Arr(elems...)
	default:
		return doc
	}
}

// Find runs the full two-argument find of §4.1 over a collection:
// filter then project, in input order. A nil projection keeps the
// filtered documents whole.
func Find(c *mongoq.Collection, filter *mongoq.Filter, proj *Projection) []*jsonval.Value {
	matched := c.Find(filter)
	if proj == nil {
		return matched
	}
	out := make([]*jsonval.Value, len(matched))
	for i, d := range matched {
		out[i] = proj.Apply(d)
	}
	return out
}
