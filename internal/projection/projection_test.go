package projection

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/mongoq"
)

func apply(t *testing.T, proj, doc string) string {
	t.Helper()
	p, err := Parse(proj)
	if err != nil {
		t.Fatalf("Parse(%s): %v", proj, err)
	}
	return p.Apply(jsonval.MustParse(doc)).Canonical()
}

func TestIncludeProjection(t *testing.T) {
	doc := `{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}`
	cases := []struct {
		proj string
		want string
	}{
		{`{"age":1}`, `{"age":32}`},
		{`{"name":1}`, `{"name":{"first":"John","last":"Doe"}}`},
		{`{"name.first":1}`, `{"name":{"first":"John"}}`},
		{`{"name.first":1,"age":1}`, `{"age":32,"name":{"first":"John"}}`},
		{`{"hobbies.1":1}`, `{"hobbies":["yoga"]}`},
		{`{"missing":1}`, `{}`},
		{`{"name.middle":1}`, `{}`},
	}
	for _, c := range cases {
		if got := apply(t, c.proj, doc); got != jsonval.MustParse(c.want).Canonical() {
			t.Errorf("%s: got %s, want %s", c.proj, got, c.want)
		}
	}
}

func TestExcludeProjection(t *testing.T) {
	doc := `{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}`
	cases := []struct {
		proj string
		want string
	}{
		{`{"age":0}`, `{"name":{"first":"John","last":"Doe"},"hobbies":["fishing","yoga"]}`},
		{`{"name.last":0}`, `{"name":{"first":"John"},"age":32,"hobbies":["fishing","yoga"]}`},
		{`{"hobbies.0":0}`, `{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["yoga"]}`},
		{`{"missing":0}`, doc},
		{`{}`, doc},
	}
	for _, c := range cases {
		if got := apply(t, c.proj, doc); got != jsonval.MustParse(c.want).Canonical() {
			t.Errorf("%s: got %s, want %s", c.proj, got, c.want)
		}
	}
}

func TestProjectionErrors(t *testing.T) {
	for _, proj := range []string{
		`5`,             // not an object
		`{"a":2}`,       // not 0/1
		`{"a":"x"}`,     // not a number
		`{"a":1,"b":0}`, // mixed modes
		`{"a..b":1}`,    // empty segment
	} {
		if _, err := Parse(proj); err == nil {
			t.Errorf("%s: expected error", proj)
		}
	}
}

func TestProjectionMode(t *testing.T) {
	if MustParse(`{"a":1}`).Mode() != Include {
		t.Error("expected include mode")
	}
	if MustParse(`{"a":0}`).Mode() != Exclude {
		t.Error("expected exclude mode")
	}
	if Include.String() != "include" || Exclude.String() != "exclude" {
		t.Error("mode names wrong")
	}
}

func TestProjectionDoesNotMutate(t *testing.T) {
	doc := jsonval.MustParse(`{"a":{"b":1,"c":2},"d":3}`)
	before := doc.Canonical()
	MustParse(`{"a.b":1}`).Apply(doc)
	MustParse(`{"a.b":0}`).Apply(doc)
	if doc.Canonical() != before {
		t.Fatal("projection mutated its input")
	}
}

func TestFindWithProjection(t *testing.T) {
	c := mongoq.NewCollection(
		jsonval.MustParse(`{"name":"Sue","age":25,"secret":"s1"}`),
		jsonval.MustParse(`{"name":"Bob","age":17,"secret":"s2"}`),
		jsonval.MustParse(`{"name":"Ann","age":32,"secret":"s3"}`),
	)
	filter := mongoq.MustParse(`{"age":{"$gte":18}}`)
	proj := MustParse(`{"secret":0}`)
	got := Find(c, filter, proj)
	if len(got) != 2 {
		t.Fatalf("got %d documents, want 2", len(got))
	}
	for _, d := range got {
		if _, leaked := d.Member("secret"); leaked {
			t.Errorf("projection leaked the secret field: %s", d)
		}
		if _, ok := d.Member("name"); !ok {
			t.Errorf("projection dropped an unprojected field: %s", d)
		}
	}
	// nil projection returns whole documents.
	whole := Find(c, filter, nil)
	if len(whole) != 2 {
		t.Fatalf("got %d documents, want 2", len(whole))
	}
	if _, ok := whole[0].Member("secret"); !ok {
		t.Error("nil projection must keep documents whole")
	}
}

// --- properties ---

type projCase struct {
	doc   *jsonval.Value
	paths []string
}

var pathPool = []string{"a", "b", "a.b", "a.c", "b.0", "b.1", "a.b.c", "d"}

func (projCase) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(3)
	paths := make([]string, 0, n)
	seen := map[string]bool{}
	for len(paths) < n {
		p := pathPool[r.Intn(len(pathPool))]
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	return reflect.ValueOf(projCase{doc: randDoc(r, 3), paths: paths})
}

func randDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 {
		return jsonval.Num(uint64(r.Intn(10)))
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(3)
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	case 1:
		keys := []string{"a", "b", "c", "d"}
		r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		n := r.Intn(4)
		members := make([]jsonval.Member, 0, n)
		for i := 0; i < n; i++ {
			members = append(members, jsonval.Member{Key: keys[i], Value: randDoc(r, depth-1)})
		}
		return jsonval.MustObj(members...)
	default:
		return jsonval.Str("s")
	}
}

func buildProj(paths []string, include bool) *Projection {
	members := make([]jsonval.Member, len(paths))
	v := uint64(0)
	if include {
		v = 1
	}
	for i, p := range paths {
		members[i] = jsonval.Member{Key: p, Value: jsonval.Num(v)}
	}
	p, err := FromValue(jsonval.MustObj(members...))
	if err != nil {
		panic(err)
	}
	return p
}

// TestProjectionPartition: for object documents, every top-level key of
// the input appears in the include result or the exclude result of the
// same paths (arrays reindex, so the property is checked on objects).
func TestProjectionPartition(t *testing.T) {
	f := func(c projCase) bool {
		if !c.doc.IsObject() {
			return true
		}
		inc := buildProj(c.paths, true).Apply(c.doc)
		exc := buildProj(c.paths, false).Apply(c.doc)
		for _, m := range c.doc.Members() {
			_, inInc := inc.Member(m.Key)
			_, inExc := exc.Member(m.Key)
			if !inInc && !inExc {
				t.Logf("doc %s paths %v: key %q lost by both projections", c.doc, c.paths, m.Key)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestProjectionIdempotent: applying the same projection twice equals
// applying it once. Positional (numeric) paths are excluded: arrays
// reindex after projection, so "b.1" addresses a different element on
// the second pass — the same caveat MongoDB documents for positional
// operators.
func TestProjectionIdempotent(t *testing.T) {
	hasDigit := func(paths []string) bool {
		for _, p := range paths {
			for _, r := range p {
				if r >= '0' && r <= '9' {
					return true
				}
			}
		}
		return false
	}
	f := func(c projCase) bool {
		if hasDigit(c.paths) {
			return true
		}
		for _, include := range []bool{true, false} {
			p := buildProj(c.paths, include)
			once := p.Apply(c.doc)
			twice := p.Apply(once)
			if !jsonval.Equal(once, twice) {
				t.Logf("doc %s paths %v include=%v: once %s twice %s", c.doc, c.paths, include, once, twice)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestIncludeIsSubtree: the include projection of a document validates
// as a sub-document: every leaf of the result appears at the same path
// in the input.
func TestIncludeIsSubtree(t *testing.T) {
	var checkLeaves func(orig, proj *jsonval.Value) bool
	checkLeaves = func(orig, proj *jsonval.Value) bool {
		if proj.IsObject() {
			if !orig.IsObject() {
				return false
			}
			for _, m := range proj.Members() {
				sub, ok := orig.Member(m.Key)
				if !ok || !checkLeaves(sub, m.Value) {
					return false
				}
			}
			return true
		}
		if proj.IsArray() {
			if !orig.IsArray() {
				return false
			}
			// Arrays reindex: every projected element must equal some
			// original element (order preserved, subset).
			j := 0
			for _, e := range proj.Elems() {
				found := false
				for ; j < orig.Len(); j++ {
					o, _ := orig.Elem(j)
					if checkLeaves(o, e) {
						found = true
						j++
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		return jsonval.Equal(orig, proj)
	}
	f := func(c projCase) bool {
		inc := buildProj(c.paths, true).Apply(c.doc)
		if c.doc.IsObject() && !checkLeaves(c.doc, inc) {
			t.Logf("doc %s paths %v: include result %s is not a sub-document", c.doc, c.paths, inc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
