package jnl

import (
	"math/bits"

	"jsonlogic/internal/jsontree"
)

// NodeSet is a set of tree nodes, stored as a bitset over the dense node
// ids of a jsontree.Tree.
type NodeSet struct {
	words []uint64
	n     int // universe size
}

// NewNodeSet returns an empty set over a universe of n nodes.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64), n: n}
}

// FullNodeSet returns the set of all n nodes.
func FullNodeSet(n int) *NodeSet {
	s := NewNodeSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << r) - 1
	}
	return s
}

// Universe returns the universe size the set ranges over.
func (s *NodeSet) Universe() int { return s.n }

// Add inserts node id.
func (s *NodeSet) Add(id jsontree.NodeID) { s.words[id/64] |= 1 << (uint(id) % 64) }

// Remove deletes node id.
func (s *NodeSet) Remove(id jsontree.NodeID) { s.words[id/64] &^= 1 << (uint(id) % 64) }

// Contains reports membership.
func (s *NodeSet) Contains(id jsontree.NodeID) bool {
	return s.words[id/64]&(1<<(uint(id)%64)) != 0
}

// Len returns the cardinality.
func (s *NodeSet) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsEmpty reports whether the set is empty.
func (s *NodeSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Slice returns the members in increasing order.
func (s *NodeSet) Slice() []jsontree.NodeID {
	out := make([]jsontree.NodeID, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			bit := w & -w
			out = append(out, jsontree.NodeID(wi*64+bits.TrailingZeros64(w)))
			w ^= bit
		}
	}
	return out
}

// Clone returns a copy.
func (s *NodeSet) Clone() *NodeSet {
	return &NodeSet{words: append([]uint64(nil), s.words...), n: s.n}
}

// UnionWith adds all members of t.
func (s *NodeSet) UnionWith(t *NodeSet) {
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes members not in t.
func (s *NodeSet) IntersectWith(t *NodeSet) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Negate complements the set within its universe.
func (s *NodeSet) Negate() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	if r := s.n % 64; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << r) - 1
	}
}
