package jnl

// This file implements a brute-force reference evaluator that follows
// the semantic equations of §4.2 literally: binary formulas denote
// explicit pair sets, unary formulas node sets, with no indexing or
// hashing. It is deliberately slow (worst-case exponential through Star
// is avoided by fixpoint iteration) and exists only to differentially
// test the production evaluator.

import (
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

type pairSet map[[2]jsontree.NodeID]bool

func refBinary(t *jsontree.Tree, b Binary) pairSet {
	out := pairSet{}
	switch f := b.(type) {
	case Epsilon:
		for _, n := range t.Nodes() {
			out[[2]jsontree.NodeID{n, n}] = true
		}
	case Test:
		inner := refUnary(t, f.Inner)
		for n := range inner {
			out[[2]jsontree.NodeID{n, n}] = true
		}
	case KeyAxis:
		for _, n := range t.Nodes() {
			if c := t.ChildByKey(n, f.Word); c != jsontree.InvalidNode {
				out[[2]jsontree.NodeID{n, c}] = true
			}
		}
	case IndexAxis:
		for _, n := range t.Nodes() {
			if t.Kind(n) != jsontree.ArrayNode {
				continue
			}
			if c := t.ChildAt(n, f.Index); c != jsontree.InvalidNode {
				out[[2]jsontree.NodeID{n, c}] = true
			}
		}
	case RegexAxis:
		for _, n := range t.Nodes() {
			if t.Kind(n) != jsontree.ObjectNode {
				continue
			}
			for _, c := range t.Children(n) {
				if f.Re.Match(t.EdgeKey(c)) {
					out[[2]jsontree.NodeID{n, c}] = true
				}
			}
		}
	case RangeAxis:
		for _, n := range t.Nodes() {
			if t.Kind(n) != jsontree.ArrayNode {
				continue
			}
			for _, c := range t.Children(n) {
				pos := t.EdgePos(c)
				if pos >= f.Lo && (f.Hi == Inf || pos <= f.Hi) {
					out[[2]jsontree.NodeID{n, c}] = true
				}
			}
		}
	case Concat:
		left := refBinary(t, f.Left)
		right := refBinary(t, f.Right)
		for lp := range left {
			for rp := range right {
				if lp[1] == rp[0] {
					out[[2]jsontree.NodeID{lp[0], rp[1]}] = true
				}
			}
		}
	case Alt:
		for p := range refBinary(t, f.Left) {
			out[p] = true
		}
		for p := range refBinary(t, f.Right) {
			out[p] = true
		}
	case Star:
		inner := refBinary(t, f.Inner)
		for _, n := range t.Nodes() {
			out[[2]jsontree.NodeID{n, n}] = true
		}
		for {
			added := false
			for op := range out {
				for ip := range inner {
					if op[1] == ip[0] {
						np := [2]jsontree.NodeID{op[0], ip[1]}
						if !out[np] {
							out[np] = true
							added = true
						}
					}
				}
			}
			if !added {
				return out
			}
		}
	}
	return out
}

type refNodeSet map[jsontree.NodeID]bool

func refUnary(t *jsontree.Tree, u Unary) refNodeSet {
	out := refNodeSet{}
	switch f := u.(type) {
	case True:
		for _, n := range t.Nodes() {
			out[n] = true
		}
	case Not:
		inner := refUnary(t, f.Inner)
		for _, n := range t.Nodes() {
			if !inner[n] {
				out[n] = true
			}
		}
	case And:
		l, r := refUnary(t, f.Left), refUnary(t, f.Right)
		for n := range l {
			if r[n] {
				out[n] = true
			}
		}
	case Or:
		l, r := refUnary(t, f.Left), refUnary(t, f.Right)
		for n := range l {
			out[n] = true
		}
		for n := range r {
			out[n] = true
		}
	case Exists:
		for p := range refBinary(t, f.Path) {
			out[p[0]] = true
		}
	case EQDoc:
		for p := range refBinary(t, f.Path) {
			if jsonval.Equal(t.Value(p[1]), f.Doc) {
				out[p[0]] = true
			}
		}
	case EQPaths:
		left := refBinary(t, f.Left)
		right := refBinary(t, f.Right)
		for lp := range left {
			if out[lp[0]] {
				continue
			}
			for rp := range right {
				if lp[0] == rp[0] && jsonval.Equal(t.Value(lp[1]), t.Value(rp[1])) {
					out[lp[0]] = true
					break
				}
			}
		}
	}
	return out
}
