package jnl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

const figure1 = `{
	"name": {"first": "John", "last": "Doe"},
	"age": 32,
	"hobbies": ["fishing","yoga"]
}`

func evalRoot(t *testing.T, doc, formula string) bool {
	t.Helper()
	tr := jsontree.MustParse(doc)
	u, err := Parse(formula)
	if err != nil {
		t.Fatalf("Parse(%q): %v", formula, err)
	}
	return Holds(tr, u, tr.Root())
}

func TestEvalBasics(t *testing.T) {
	tests := []struct {
		formula string
		want    bool
	}{
		{`true`, true},
		{`!true`, false},
		{`[/name]`, true},
		{`[/name/first]`, true},
		{`[/name/last]`, true},
		{`[/name/middle]`, false},
		{`[/age]`, true},
		{`[/missing]`, false},
		{`[/hobbies/0]`, true},
		{`[/hobbies/1]`, true},
		{`[/hobbies/2]`, false},
		{`[/hobbies/-1]`, true},
		{`eq(/age, 32)`, true},
		{`eq(/age, 33)`, false},
		{`eq(/name/first, "John")`, true},
		{`eq(/name, {"first":"John","last":"Doe"})`, true},
		{`eq(/name, {"last":"Doe","first":"John"})`, true}, // object order irrelevant
		{`eq(/name, {"first":"John"})`, false},
		{`eq(/hobbies, ["fishing","yoga"])`, true},
		{`eq(/hobbies, ["yoga","fishing"])`, false}, // array order matters
		{`eq(/hobbies/1, "yoga")`, true},
		{`eq(/hobbies/-1, "yoga")`, true},
		{`[/name] && [/age]`, true},
		{`[/name] && [/missing]`, false},
		{`[/missing] || [/age]`, true},
		{`!([/missing])`, true},
		{`[/name <eq(/first, "John")>]`, true},
		{`[/name <eq(/first, "Jane")>]`, false},
		{`[eps]`, true},
		{`eq(eps, {"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]})`, true},
		// Non-deterministic axes.
		{`[/~"h.*"]`, true},
		{`[/~"z.*"]`, false},
		{`[/~"(name|age)" ]`, true},
		{`[/hobbies /[0:1]]`, true},
		{`[/hobbies /[2:]]`, false},
		{`[/hobbies /[0:] <eq(eps, "yoga")>]`, true},
		{`[/hobbies /[0:] <eq(eps, "tennis")>]`, false},
		// Recursion: "Doe" is reachable through object edges alone
		// (root -name-> object -last-> "Doe"), but "yoga" is not (it
		// sits under an array edge).
		{`[(/~".*")* <eq(eps, "Doe")>]`, true},
		{`[(/~".*" )* /last <eq(eps, "Doe")>]`, true},
		{`[(/~".*")* <eq(eps, "yoga")>]`, false},
		// EQ over two paths.
		{`eq(/name/first, /name/first)`, true},
		{`eq(/name/first, /name/last)`, false},
	}
	for _, tc := range tests {
		if got := evalRoot(t, figure1, tc.formula); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.formula, got, tc.want)
		}
	}
}

func TestRecursionDescendant(t *testing.T) {
	// Descendant-or-self over both object and array edges: the union
	// axis (X_Σ* ∪ X_{0:∞}) is expressed as (/~".*" | /[0:])* via two
	// stars since the syntax has no union of binaries; use composition
	// of stars: ((/~".*")* (/[0:])*)* covers interleavings.
	tr := jsontree.MustParse(figure1)
	u := MustParse(`[((/~".*")* (/[0:])*)* <eq(eps, "yoga")>]`)
	if !Holds(tr, u, tr.Root()) {
		t.Error("descendant search for \"yoga\" should succeed")
	}
	u2 := MustParse(`[((/~".*")* (/[0:])*)* <eq(eps, "Doe")>]`)
	if !Holds(tr, u2, tr.Root()) {
		t.Error("descendant search for \"Doe\" should succeed")
	}
	u3 := MustParse(`[((/~".*")* (/[0:])*)* <eq(eps, "nothere")>]`)
	if Holds(tr, u3, tr.Root()) {
		t.Error("descendant search for \"nothere\" should fail")
	}
}

// TestExample1 reproduces Example 1 of the paper: the MongoDB query
// db.collection.find({name: {$eq: "Sue"}}, {}) corresponds to the
// navigation condition J[name] = "Sue".
func TestExample1(t *testing.T) {
	sue := jsontree.MustParse(`{"name":"Sue","age":28}`)
	john := jsontree.MustParse(figure1)
	cond := MustParse(`eq(/name, "Sue")`)
	if !Holds(sue, cond, sue.Root()) {
		t.Error("Sue's document should match")
	}
	if Holds(john, cond, john.Root()) {
		t.Error("John's document should not match")
	}
}

// TestKeyUniquenessUnsat reflects the observation after Proposition 2:
// X_a[X_1] ∧ X_a[X_b] is unsatisfiable because the value under key a
// cannot be both an array and an object. Evaluation-side check: no
// document can satisfy it.
func TestKeyUniquenessConflict(t *testing.T) {
	u := MustParse(`[/a <[/1]>] && [/a <[/b]>]`)
	for _, doc := range []string{
		`{"a":[0,1]}`, `{"a":{"b":1}}`, `{"a":1}`, `{}`,
		`{"a":[[],[]],"b":{"b":0}}`,
	} {
		tr := jsontree.MustParse(doc)
		if Holds(tr, u, tr.Root()) {
			t.Errorf("formula held on %s; key uniqueness should forbid it", doc)
		}
	}
}

func TestSelect(t *testing.T) {
	tr := jsontree.MustParse(figure1)
	ev := NewEvaluator(tr)
	got := ev.Select(MustParseBinary(`/hobbies /[0:]`), tr.Root())
	if len(got) != 2 {
		t.Fatalf("Select returned %d nodes, want 2", len(got))
	}
	vals := []string{tr.StringVal(got[0]), tr.StringVal(got[1])}
	if !reflect.DeepEqual(vals, []string{"fishing", "yoga"}) {
		t.Errorf("Select values = %v", vals)
	}
	if n := ev.Select(MustParseBinary(`/name/first`), tr.Root()); len(n) != 1 || tr.StringVal(n[0]) != "John" {
		t.Errorf("Select /name/first = %v", n)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		formula string
		det     bool
		rec     bool
		eqp     bool
	}{
		{`[/a/b/0]`, true, false, false},
		{`eq(/a, 1)`, true, false, false},
		{`eq(/a, /b)`, true, false, true},
		{`[/~"a.*"]`, false, false, false},
		{`[/[0:2]]`, false, false, false},
		{`[(/a)*]`, false, true, false},
		{`[/a <[/~"x"]>]`, false, false, false},
	}
	for _, tc := range cases {
		c := Classify(MustParse(tc.formula))
		if c.Deterministic != tc.det || c.Recursive != tc.rec || c.HasEQPaths != tc.eqp {
			t.Errorf("Classify(%s) = %+v", tc.formula, c)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	formulas := []string{
		`true`,
		`[/name/first]`,
		`eq(/age, 32)`,
		`eq(/a, /b/0)`,
		`[/~"h.*" /[0:]]`,
		`[(/a)* <true>]`,
		`!([/a] && [/b]) || eq(eps, {})`,
		`[/"quoted key!" /-1]`,
		`[/[2:5]]`,
	}
	for _, f := range formulas {
		u, err := Parse(f)
		if err != nil {
			t.Errorf("Parse(%q): %v", f, err)
			continue
		}
		rendered := String(u)
		u2, err := Parse(rendered)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", f, rendered, err)
			continue
		}
		if String(u2) != rendered {
			t.Errorf("print-parse-print not stable: %q vs %q", rendered, String(u2))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `[`, `[/a`, `[/]`, `eq(/a)`, `eq(/a,)`, `eq(/a, tru)`,
		`[/a] &&`, `(true`, `</a>`, `[/~bad]`, `[/~"("]`, `[/[3:1]]`,
		`[/[-1:2]]`, `true extra`, `!!`,
	}
	for _, f := range bad {
		if _, err := Parse(f); err == nil {
			t.Errorf("Parse(%q): expected error", f)
		}
	}
}

// randDoc generates a small random document for differential testing.
func randDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(3)))
		}
		return jsonval.Str(string(rune('u' + r.Intn(3))))
	}
	n := r.Intn(3) + 1
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := string(rune('a' + r.Intn(4)))
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: randDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

// randUnary generates random JNL formulas exercising every constructor.
func randUnary(r *rand.Rand, depth int) Unary {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return True{}
		case 1:
			return Exists{randBinary(r, 0)}
		default:
			return EQDoc{randBinary(r, 0), randDoc(r, 1)}
		}
	}
	switch r.Intn(7) {
	case 0:
		return True{}
	case 1:
		return Not{randUnary(r, depth-1)}
	case 2:
		return And{randUnary(r, depth-1), randUnary(r, depth-1)}
	case 3:
		return Or{randUnary(r, depth-1), randUnary(r, depth-1)}
	case 4:
		return Exists{randBinary(r, depth-1)}
	case 5:
		return EQDoc{randBinary(r, depth-1), randDoc(r, 1)}
	default:
		return EQPaths{randBinary(r, depth-1), randBinary(r, depth-1)}
	}
}

func randBinary(r *rand.Rand, depth int) Binary {
	if depth == 0 {
		switch r.Intn(5) {
		case 0:
			return Epsilon{}
		case 1:
			return KeyAxis{string(rune('a' + r.Intn(4)))}
		case 2:
			return IndexAxis{r.Intn(3) - 1}
		case 3:
			return Rx(string(rune('a'+r.Intn(3))) + ".*")
		default:
			return RangeAxis{r.Intn(2), r.Intn(2) + 1}
		}
	}
	switch r.Intn(4) {
	case 0:
		return Concat{randBinary(r, depth-1), randBinary(r, depth-1)}
	case 1:
		return Test{randUnary(r, depth-1)}
	case 2:
		return Star{randBinary(r, depth-1)}
	default:
		return randBinary(r, 0)
	}
}

type diffCase struct {
	doc     *jsonval.Value
	formula Unary
}

func (diffCase) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(diffCase{randDoc(r, 2+r.Intn(2)), randUnary(r, 2)})
}

// TestQuickDifferential checks the production evaluator against the
// brute-force reference evaluator on random documents and formulas, for
// every combination of ablation options.
func TestQuickDifferential(t *testing.T) {
	optVariants := []Options{
		{},
		{NaivePairs: true},
		{NaiveEquality: true},
		{NaivePairs: true, NaiveEquality: true},
	}
	f := func(c diffCase) bool {
		tr := jsontree.FromValue(c.doc)
		want := refUnary(tr, c.formula)
		for _, opts := range optVariants {
			got := NewEvaluatorOptions(tr, opts).Eval(c.formula)
			if got.Len() != len(want) {
				t.Logf("doc=%s formula=%s opts=%+v: got %d nodes, want %d",
					c.doc, String(c.formula), opts, got.Len(), len(want))
				return false
			}
			for n := range want {
				if !got.Contains(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserRoundTrip: rendering then reparsing preserves semantics
// on random documents.
func TestQuickParserRoundTrip(t *testing.T) {
	f := func(c diffCase) bool {
		rendered := String(c.formula)
		parsed, err := Parse(rendered)
		if err != nil {
			t.Logf("render %q failed to parse: %v", rendered, err)
			return false
		}
		tr := jsontree.FromValue(c.doc)
		a := Eval(tr, c.formula)
		b := Eval(tr, parsed)
		if a.Len() != b.Len() {
			return false
		}
		for _, n := range a.Slice() {
			if !b.Contains(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 || !s.Contains(64) || s.Contains(1) {
		t.Error("basic set ops failed")
	}
	s.Negate()
	if s.Len() != 127 || s.Contains(129) || !s.Contains(1) {
		t.Errorf("negate failed: len=%d", s.Len())
	}
	full := FullNodeSet(130)
	if full.Len() != 130 {
		t.Errorf("FullNodeSet len = %d", full.Len())
	}
	s2 := s.Clone()
	s2.IntersectWith(full)
	if s2.Len() != s.Len() {
		t.Error("intersect with full changed set")
	}
	s.Remove(1)
	if s.Contains(1) {
		t.Error("remove failed")
	}
	ids := s.Slice()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("Slice not sorted")
		}
	}
	if s.IsEmpty() || !NewNodeSet(10).IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if s.Universe() != 130 {
		t.Error("Universe wrong")
	}
}

func TestSizeFunctions(t *testing.T) {
	u := MustParse(`[/a/b] && eq(/c, 1)`)
	if Size(u) < 6 {
		t.Errorf("Size = %d, expected at least 6", Size(u))
	}
	b := MustParseBinary(`/a (/b)* <true>`)
	if SizeBinary(b) < 5 {
		t.Errorf("SizeBinary = %d", SizeBinary(b))
	}
}
