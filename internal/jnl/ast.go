// Package jnl implements the JSON Navigational Logic of §4 of the paper:
// the deterministic core (Definition 1), its non-deterministic extension
// (regular-expression key axes X_e and interval array axes X_{i:j}) and
// its recursive extension (Kleene star over binary formulas), together
// with the evaluation algorithms of Propositions 1 and 3.
//
// Binary formulas α denote binary relations ⟦α⟧_J over the nodes of a
// JSON tree (they "move"); unary formulas φ denote node sets ⟦φ⟧_J (they
// "test"). The concrete syntax accepted by Parse writes key axes as /w,
// array axes as /3 (or /-1 for the last element), regex axes as /~"e",
// interval axes as /[i:j], composition by juxtaposition, node tests in
// angle brackets, and the equality predicates as eq(α, A) and eq(α, β).
package jnl

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Binary is a binary formula α: a relation over pairs of nodes.
type Binary interface {
	isBinary()
	writeTo(sb *strings.Builder)
}

// Unary is a unary formula φ: a set of nodes.
type Unary interface {
	isUnary()
	writeTo(sb *strings.Builder)
}

// ---- Binary formulas ----

// Epsilon is ε, the identity relation.
type Epsilon struct{}

// KeyAxis is X_w: from an object node to the value of its key w.
type KeyAxis struct{ Word string }

// IndexAxis is X_i: from an array node to its i-th element (0-based).
// Negative indices address from the end: -1 is the last element, -j the
// j-th from the last, per the paper's remark on dual array access.
type IndexAxis struct{ Index int }

// RegexAxis is X_e: from an object node to the value of any key in L(e)
// (non-deterministic JNL, §4.3).
type RegexAxis struct{ Re *relang.Regex }

// RangeAxis is X_{i:j}: from an array node to any element at position
// i ≤ p ≤ j. Hi = Inf (-1 is not used; use the Inf constant) means +∞.
type RangeAxis struct {
	Lo, Hi int // Hi == Inf means +∞
}

// Inf is the upper bound +∞ for RangeAxis.
const Inf = int(^uint(0) >> 1)

// Test is ⟨φ⟩: the identity relation restricted to nodes satisfying φ.
type Test struct{ Inner Unary }

// Concat is α ∘ β, relation composition.
type Concat struct{ Left, Right Binary }

// Star is (α)*, reflexive-transitive closure (recursive JNL, §4.3).
type Star struct{ Inner Binary }

// Alt is α ∪ β, union of relations. It is not part of the paper's
// grammar (Definition 1 composes binaries only by ∘); it is provided as
// an extension for the JSONPath frontend, whose wildcard step must
// traverse object and array edges alike. Alt is expressible in the
// unary fragment ([α∪β] ≡ [α]∨[β]) but not as a binary, and the product
// evaluator supports it natively at no extra cost.
type Alt struct{ Left, Right Binary }

func (Epsilon) isBinary()   {}
func (KeyAxis) isBinary()   {}
func (IndexAxis) isBinary() {}
func (RegexAxis) isBinary() {}
func (RangeAxis) isBinary() {}
func (Test) isBinary()      {}
func (Concat) isBinary()    {}
func (Alt) isBinary()       {}
func (Star) isBinary()      {}

// ---- Unary formulas ----

// True is ⊤, satisfied by every node.
type True struct{}

// Not is ¬φ.
type Not struct{ Inner Unary }

// And is φ ∧ ψ.
type And struct{ Left, Right Unary }

// Or is φ ∨ ψ.
type Or struct{ Left, Right Unary }

// Exists is [α]: nodes with at least one α-successor.
type Exists struct{ Path Binary }

// EQDoc is EQ(α, A): nodes with an α-successor n' with json(n') = A.
type EQDoc struct {
	Path Binary
	Doc  *jsonval.Value
}

// EQPaths is EQ(α, β): nodes with an α-successor and a β-successor
// rooting equal subtrees. Its presence drives the evaluation complexity
// from linear to cubic (Proposition 3) and satisfiability to undecidable
// (Proposition 4).
type EQPaths struct{ Left, Right Binary }

func (True) isUnary()    {}
func (Not) isUnary()     {}
func (And) isUnary()     {}
func (Or) isUnary()      {}
func (Exists) isUnary()  {}
func (EQDoc) isUnary()   {}
func (EQPaths) isUnary() {}

// ---- Convenience constructors ----

// Key returns the axis X_w.
func Key(w string) Binary { return KeyAxis{w} }

// At returns the axis X_i.
func At(i int) Binary { return IndexAxis{i} }

// Rx returns the axis X_e for a pattern; it panics on a bad pattern (use
// relang.Compile plus RegexAxis for error handling).
func Rx(pattern string) Binary { return RegexAxis{relang.MustCompile(pattern)} }

// Range returns the axis X_{lo:hi}; pass Inf for an open upper bound.
func Range(lo, hi int) Binary { return RangeAxis{lo, hi} }

// Seq composes the given binaries left to right; Seq() is ε.
func Seq(parts ...Binary) Binary {
	if len(parts) == 0 {
		return Epsilon{}
	}
	out := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		out = Concat{parts[i], out}
	}
	return out
}

// AndAll conjoins the unaries; AndAll() is ⊤.
func AndAll(parts ...Unary) Unary {
	if len(parts) == 0 {
		return True{}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = And{out, p}
	}
	return out
}

// OrAll disjoins the unaries; OrAll() is ¬⊤.
func OrAll(parts ...Unary) Unary {
	if len(parts) == 0 {
		return Not{True{}}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Or{out, p}
	}
	return out
}

// ---- Classification (§4.2 vs §4.3 fragments) ----

// Class describes which JNL fragment a formula belongs to.
type Class struct {
	// Deterministic reports that only X_w and X_i axes occur (the core
	// logic of Definition 1): no regex or interval axes and no star.
	Deterministic bool
	// Recursive reports that a Kleene star occurs.
	Recursive bool
	// HasEQPaths reports that the binary equality EQ(α,β) occurs; it is
	// the feature that separates linear from cubic evaluation.
	HasEQPaths bool
	// HasEQDoc reports that EQ(α, A) occurs.
	HasEQDoc bool
	// HasNegation reports that ¬ occurs.
	HasNegation bool
}

// Classify computes the fragment of a unary formula.
func Classify(u Unary) Class {
	var c Class
	c.Deterministic = true
	classifyUnary(u, &c)
	return c
}

// ClassifyBinary computes the fragment of a binary formula.
func ClassifyBinary(b Binary) Class {
	var c Class
	c.Deterministic = true
	classifyBinary(b, &c)
	return c
}

func classifyUnary(u Unary, c *Class) {
	switch t := u.(type) {
	case True:
	case Not:
		c.HasNegation = true
		classifyUnary(t.Inner, c)
	case And:
		classifyUnary(t.Left, c)
		classifyUnary(t.Right, c)
	case Or:
		classifyUnary(t.Left, c)
		classifyUnary(t.Right, c)
	case Exists:
		classifyBinary(t.Path, c)
	case EQDoc:
		c.HasEQDoc = true
		classifyBinary(t.Path, c)
	case EQPaths:
		c.HasEQPaths = true
		classifyBinary(t.Left, c)
		classifyBinary(t.Right, c)
	default:
		panic(fmt.Sprintf("jnl: unknown unary %T", u))
	}
}

func classifyBinary(b Binary, c *Class) {
	switch t := b.(type) {
	case Epsilon, KeyAxis, IndexAxis:
	case RegexAxis, RangeAxis:
		c.Deterministic = false
	case Test:
		classifyUnary(t.Inner, c)
	case Concat:
		classifyBinary(t.Left, c)
		classifyBinary(t.Right, c)
	case Star:
		c.Recursive = true
		c.Deterministic = false
		classifyBinary(t.Inner, c)
	case Alt:
		c.Deterministic = false
		classifyBinary(t.Left, c)
		classifyBinary(t.Right, c)
	default:
		panic(fmt.Sprintf("jnl: unknown binary %T", b))
	}
}

// Size returns the number of AST nodes of the formula, the |φ| of the
// complexity statements.
func Size(u Unary) int {
	n := 0
	sizeUnary(u, &n)
	return n
}

// SizeBinary is Size for binary formulas.
func SizeBinary(b Binary) int {
	n := 0
	sizeBinary(b, &n)
	return n
}

func sizeUnary(u Unary, n *int) {
	*n++
	switch t := u.(type) {
	case Not:
		sizeUnary(t.Inner, n)
	case And:
		sizeUnary(t.Left, n)
		sizeUnary(t.Right, n)
	case Or:
		sizeUnary(t.Left, n)
		sizeUnary(t.Right, n)
	case Exists:
		sizeBinary(t.Path, n)
	case EQDoc:
		sizeBinary(t.Path, n)
	case EQPaths:
		sizeBinary(t.Left, n)
		sizeBinary(t.Right, n)
	}
}

func sizeBinary(b Binary, n *int) {
	*n++
	switch t := b.(type) {
	case Test:
		sizeUnary(t.Inner, n)
	case Concat:
		sizeBinary(t.Left, n)
		sizeBinary(t.Right, n)
	case Star:
		sizeBinary(t.Inner, n)
	case Alt:
		sizeBinary(t.Left, n)
		sizeBinary(t.Right, n)
	}
}

// ---- Rendering ----

func (Epsilon) writeTo(sb *strings.Builder) { sb.WriteString("eps") }

func (a KeyAxis) writeTo(sb *strings.Builder) {
	sb.WriteByte('/')
	writeKey(sb, a.Word)
}

func (a IndexAxis) writeTo(sb *strings.Builder) {
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(a.Index))
}

func (a RegexAxis) writeTo(sb *strings.Builder) {
	sb.WriteString("/~")
	sb.WriteString(strconv.Quote(a.Re.String()))
}

func (a RangeAxis) writeTo(sb *strings.Builder) {
	fmt.Fprintf(sb, "/[%d:", a.Lo)
	if a.Hi != Inf {
		sb.WriteString(strconv.Itoa(a.Hi))
	}
	sb.WriteByte(']')
}

func (t Test) writeTo(sb *strings.Builder) {
	sb.WriteByte('<')
	t.Inner.writeTo(sb)
	sb.WriteByte('>')
}

func (c Concat) writeTo(sb *strings.Builder) {
	c.Left.writeTo(sb)
	sb.WriteByte(' ')
	c.Right.writeTo(sb)
}

func (s Star) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	s.Inner.writeTo(sb)
	sb.WriteString(")*")
}

func (a Alt) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	a.Left.writeTo(sb)
	sb.WriteString(" | ")
	a.Right.writeTo(sb)
	sb.WriteByte(')')
}

func (True) writeTo(sb *strings.Builder) { sb.WriteString("true") }

func (n Not) writeTo(sb *strings.Builder) {
	sb.WriteByte('!')
	writeUnaryAtom(sb, n.Inner)
}

func (a And) writeTo(sb *strings.Builder) {
	writeUnaryAtom(sb, a.Left)
	sb.WriteString(" && ")
	writeUnaryAtom(sb, a.Right)
}

func (o Or) writeTo(sb *strings.Builder) {
	writeUnaryAtom(sb, o.Left)
	sb.WriteString(" || ")
	writeUnaryAtom(sb, o.Right)
}

func (e Exists) writeTo(sb *strings.Builder) {
	sb.WriteByte('[')
	e.Path.writeTo(sb)
	sb.WriteByte(']')
}

func (e EQDoc) writeTo(sb *strings.Builder) {
	sb.WriteString("eq(")
	e.Path.writeTo(sb)
	sb.WriteString(", ")
	sb.WriteString(e.Doc.String())
	sb.WriteByte(')')
}

func (e EQPaths) writeTo(sb *strings.Builder) {
	sb.WriteString("eq(")
	e.Left.writeTo(sb)
	sb.WriteString(", ")
	e.Right.writeTo(sb)
	sb.WriteByte(')')
}

// writeUnaryAtom parenthesizes composite operands for readability.
func writeUnaryAtom(sb *strings.Builder, u Unary) {
	switch u.(type) {
	case And, Or:
		sb.WriteByte('(')
		u.writeTo(sb)
		sb.WriteByte(')')
	default:
		u.writeTo(sb)
	}
}

func writeKey(sb *strings.Builder, w string) {
	if isIdent(w) {
		sb.WriteString(w)
		return
	}
	sb.WriteString(strconv.Quote(w))
}

func isIdent(w string) bool {
	if w == "" {
		return false
	}
	for i, r := range w {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// String renders the unary formula in the concrete syntax of Parse.
func String(u Unary) string {
	var sb strings.Builder
	u.writeTo(&sb)
	return sb.String()
}

// StringBinary renders the binary formula in the concrete syntax.
func StringBinary(b Binary) string {
	var sb strings.Builder
	b.writeTo(&sb)
	return sb.String()
}
