package jnl

import (
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/relang"
)

// A binary formula is compiled into a "program": a small ε-NFA over the
// alphabet of axes and node tests, in the style of the PDL model
// checking algorithms cited by Proposition 3. Evaluation is then
// reachability over the product of the tree with the program, which
// visits each (tree edge, program edge) pair at most once and therefore
// runs in O(|J|·|α|).

type edgeKind uint8

const (
	epsEdge edgeKind = iota
	keyEdge
	idxEdge
	regexEdge
	rangeEdge
	testEdge
)

type progEdge struct {
	kind edgeKind
	from int
	to   int
	key  string        // keyEdge
	idx  int           // idxEdge (may be negative: from the end)
	lo   int           // rangeEdge
	hi   int           // rangeEdge (Inf for +∞)
	re   *relang.Regex // regexEdge
	test *NodeSet      // testEdge: pre-evaluated node set of the test
}

type prog struct {
	numStates int
	start     int
	accept    int
	edges     []progEdge
	// byTarget[q] lists indices of edges entering q; used by backward
	// reachability. bySource[q] lists edges leaving q, used forward.
	byTarget [][]int
	bySource [][]int
}

func (p *prog) newState() int {
	p.numStates++
	return p.numStates - 1
}

func (p *prog) addEdge(e progEdge) {
	p.edges = append(p.edges, e)
}

func (p *prog) index() {
	p.byTarget = make([][]int, p.numStates)
	p.bySource = make([][]int, p.numStates)
	for i, e := range p.edges {
		p.byTarget[e.to] = append(p.byTarget[e.to], i)
		p.bySource[e.from] = append(p.bySource[e.from], i)
	}
}

// compile builds the program for a binary formula. Nested unary tests
// are evaluated eagerly (recursively through the Evaluator), so the
// program's test edges carry finished node sets.
func (ev *Evaluator) compile(b Binary) *prog {
	p := &prog{}
	start, accept := ev.compileInto(p, b)
	p.start, p.accept = start, accept
	p.index()
	return p
}

func (ev *Evaluator) compileInto(p *prog, b Binary) (start, accept int) {
	switch t := b.(type) {
	case Epsilon:
		s, f := p.newState(), p.newState()
		p.addEdge(progEdge{kind: epsEdge, from: s, to: f})
		return s, f
	case KeyAxis:
		s, f := p.newState(), p.newState()
		p.addEdge(progEdge{kind: keyEdge, from: s, to: f, key: t.Word})
		return s, f
	case IndexAxis:
		s, f := p.newState(), p.newState()
		p.addEdge(progEdge{kind: idxEdge, from: s, to: f, idx: t.Index})
		return s, f
	case RegexAxis:
		s, f := p.newState(), p.newState()
		p.addEdge(progEdge{kind: regexEdge, from: s, to: f, re: t.Re})
		return s, f
	case RangeAxis:
		s, f := p.newState(), p.newState()
		p.addEdge(progEdge{kind: rangeEdge, from: s, to: f, lo: t.Lo, hi: t.Hi})
		return s, f
	case Test:
		s, f := p.newState(), p.newState()
		set := ev.evalUnary(t.Inner)
		p.addEdge(progEdge{kind: testEdge, from: s, to: f, test: set})
		return s, f
	case Concat:
		s1, f1 := ev.compileInto(p, t.Left)
		s2, f2 := ev.compileInto(p, t.Right)
		p.addEdge(progEdge{kind: epsEdge, from: f1, to: s2})
		return s1, f2
	case Star:
		s, f := p.newState(), p.newState()
		is, ifi := ev.compileInto(p, t.Inner)
		p.addEdge(progEdge{kind: epsEdge, from: s, to: f})
		p.addEdge(progEdge{kind: epsEdge, from: s, to: is})
		p.addEdge(progEdge{kind: epsEdge, from: ifi, to: is})
		p.addEdge(progEdge{kind: epsEdge, from: ifi, to: f})
		return s, f
	case Alt:
		s, f := p.newState(), p.newState()
		ls, lf := ev.compileInto(p, t.Left)
		rs, rf := ev.compileInto(p, t.Right)
		p.addEdge(progEdge{kind: epsEdge, from: s, to: ls})
		p.addEdge(progEdge{kind: epsEdge, from: s, to: rs})
		p.addEdge(progEdge{kind: epsEdge, from: lf, to: f})
		p.addEdge(progEdge{kind: epsEdge, from: rf, to: f})
		return s, f
	}
	panic("jnl: unknown binary formula")
}

// axisMatchesEdge reports whether the program edge e can traverse the
// tree edge parent(child) → child.
func (ev *Evaluator) axisMatchesEdge(e *progEdge, child jsontree.NodeID) bool {
	t := ev.tree
	parent := t.Parent(child)
	if parent == jsontree.InvalidNode {
		return false
	}
	switch e.kind {
	case keyEdge:
		return t.Kind(parent) == jsontree.ObjectNode && t.EdgeKey(child) == e.key
	case regexEdge:
		return t.Kind(parent) == jsontree.ObjectNode && ev.regexMark(e.re, child)
	case idxEdge:
		if t.Kind(parent) != jsontree.ArrayNode {
			return false
		}
		want := e.idx
		if want < 0 {
			want += t.NumChildren(parent)
		}
		return t.EdgePos(child) == want
	case rangeEdge:
		if t.Kind(parent) != jsontree.ArrayNode {
			return false
		}
		pos := t.EdgePos(child)
		return pos >= e.lo && (e.hi == Inf || pos <= e.hi)
	}
	return false
}

// regexMark implements the per-edge regex preprocessing of Proposition
// 3: the first time a regex is seen, every edge label of the tree is
// classified against it once; subsequent lookups are O(1).
func (ev *Evaluator) regexMark(re *relang.Regex, child jsontree.NodeID) bool {
	marks, ok := ev.regexMarks[re]
	if !ok {
		t := ev.tree
		marks = make([]bool, t.Len())
		memo := make(map[string]bool)
		t.Walk(func(n jsontree.NodeID) {
			p := t.Parent(n)
			if p == jsontree.InvalidNode || t.Kind(p) != jsontree.ObjectNode {
				return
			}
			key := t.EdgeKey(n)
			m, seen := memo[key]
			if !seen {
				m = re.Match(key)
				memo[key] = m
			}
			marks[n] = m
		})
		ev.regexMarks[re] = marks
	}
	return marks[child]
}

// backwardReach computes {n | ∃n' ∈ target reachable from n via the
// program}: backward reachability over the (tree × program) product.
// Work is O(|J| · |edges|): each (tree node, program edge) pair enters
// the worklist at most once.
func (ev *Evaluator) backwardReach(p *prog, target *NodeSet) *NodeSet {
	t := ev.tree
	numNodes := t.Len()
	good := make([]bool, numNodes*p.numStates)
	type pair struct {
		node  jsontree.NodeID
		state int
	}
	var worklist []pair
	mark := func(n jsontree.NodeID, q int) {
		i := int(n)*p.numStates + q
		if !good[i] {
			good[i] = true
			worklist = append(worklist, pair{n, q})
		}
	}
	for _, n := range target.Slice() {
		mark(n, p.accept)
	}
	for len(worklist) > 0 {
		cur := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, ei := range p.byTarget[cur.state] {
			e := &p.edges[ei]
			switch e.kind {
			case epsEdge:
				mark(cur.node, e.from)
			case testEdge:
				if e.test.Contains(cur.node) {
					mark(cur.node, e.from)
				}
			default:
				if ev.axisMatchesEdge(e, cur.node) {
					mark(t.Parent(cur.node), e.from)
				}
			}
		}
	}
	result := NewNodeSet(numNodes)
	for i := 0; i < numNodes; i++ {
		if good[i*p.numStates+p.start] {
			result.Add(jsontree.NodeID(i))
		}
	}
	return result
}

// forwardReach computes the nodes reachable from `from` via the program:
// forward BFS over the (tree × program) product, collecting nodes paired
// with the accept state.
func (ev *Evaluator) forwardReach(p *prog, from jsontree.NodeID) []jsontree.NodeID {
	t := ev.tree
	seen := make(map[int64]bool)
	key := func(n jsontree.NodeID, q int) int64 { return int64(n)*int64(p.numStates) + int64(q) }
	type pair struct {
		node  jsontree.NodeID
		state int
	}
	var out []jsontree.NodeID
	inResult := make(map[jsontree.NodeID]bool)
	worklist := []pair{{from, p.start}}
	seen[key(from, p.start)] = true
	for len(worklist) > 0 {
		cur := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if cur.state == p.accept && !inResult[cur.node] {
			inResult[cur.node] = true
			out = append(out, cur.node)
		}
		for _, ei := range p.bySource[cur.state] {
			e := &p.edges[ei]
			push := func(n jsontree.NodeID, q int) {
				if !seen[key(n, q)] {
					seen[key(n, q)] = true
					worklist = append(worklist, pair{n, q})
				}
			}
			switch e.kind {
			case epsEdge:
				push(cur.node, e.to)
			case testEdge:
				if e.test.Contains(cur.node) {
					push(cur.node, e.to)
				}
			case keyEdge:
				if c := t.ChildByKey(cur.node, e.key); c != jsontree.InvalidNode {
					push(c, e.to)
				}
			case idxEdge:
				if c := t.ChildAt(cur.node, e.idx); c != jsontree.InvalidNode {
					push(c, e.to)
				}
			case regexEdge:
				if t.Kind(cur.node) == jsontree.ObjectNode {
					for _, c := range t.Children(cur.node) {
						if ev.regexMark(e.re, c) {
							push(c, e.to)
						}
					}
				}
			case rangeEdge:
				if t.Kind(cur.node) == jsontree.ArrayNode {
					for _, c := range t.Children(cur.node) {
						pos := t.EdgePos(c)
						if pos >= e.lo && (e.hi == Inf || pos <= e.hi) {
							push(c, e.to)
						}
					}
				}
			}
		}
	}
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(ids []jsontree.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// evalEQPaths evaluates EQ(α, β). When both paths are deterministic
// (and NaivePairs is off) each node has at most one α- and one
// β-successor, and the check is a single linear pass with online subtree
// comparison (the refinement used to prove Proposition 1). Otherwise it
// performs, for every node, a forward product search on both sides and
// intersects the sets of subtree-equality classes reached — the
// general-case bound of Proposition 3.
func (ev *Evaluator) evalEQPaths(f EQPaths) *NodeSet {
	t := ev.tree
	result := NewNodeSet(t.Len())
	lc := ClassifyBinary(f.Left)
	rc := ClassifyBinary(f.Right)
	if lc.Deterministic && rc.Deterministic && !ev.opts.NaivePairs {
		lp := ev.compile(f.Left)
		rp := ev.compile(f.Right)
		for i := 0; i < t.Len(); i++ {
			n := jsontree.NodeID(i)
			ln, ok1 := ev.navigateDet(lp, n)
			if !ok1 {
				continue
			}
			rn, ok2 := ev.navigateDet(rp, n)
			if !ok2 {
				continue
			}
			if ev.sameSubtree(ln, rn) {
				result.Add(n)
			}
		}
		return result
	}
	lp := ev.compile(f.Left)
	rp := ev.compile(f.Right)
	classes := ev.subtreeClasses()
	for i := 0; i < t.Len(); i++ {
		n := jsontree.NodeID(i)
		left := ev.forwardReach(lp, n)
		if len(left) == 0 {
			continue
		}
		right := ev.forwardReach(rp, n)
		if len(right) == 0 {
			continue
		}
		if ev.opts.NaiveEquality {
			if anyPairEqualNaive(t, left, right) {
				result.Add(n)
			}
			continue
		}
		lclasses := make(map[int32]bool, len(left))
		for _, m := range left {
			lclasses[classes[m]] = true
		}
		for _, m := range right {
			if lclasses[classes[m]] {
				result.Add(n)
				break
			}
		}
	}
	return result
}

func anyPairEqualNaive(t *jsontree.Tree, left, right []jsontree.NodeID) bool {
	for _, l := range left {
		for _, r := range right {
			if t.SubtreeEqualNaive(l, r) {
				return true
			}
		}
	}
	return false
}

// navigateDet follows a deterministic program from node n, returning the
// unique target if the whole path matches. Deterministic programs are
// straight-line sequences of key/index/test/ε edges (no branching), so a
// simple walk suffices.
func (ev *Evaluator) navigateDet(p *prog, n jsontree.NodeID) (jsontree.NodeID, bool) {
	t := ev.tree
	state := p.start
	cur := n
	for state != p.accept {
		outs := p.bySource[state]
		if len(outs) != 1 {
			// Deterministic formulas compile to straight-line programs;
			// anything else is a caller error.
			panic("jnl: navigateDet on branching program")
		}
		e := &p.edges[outs[0]]
		switch e.kind {
		case epsEdge:
		case testEdge:
			if !e.test.Contains(cur) {
				return jsontree.InvalidNode, false
			}
		case keyEdge:
			c := t.ChildByKey(cur, e.key)
			if c == jsontree.InvalidNode {
				return jsontree.InvalidNode, false
			}
			cur = c
		case idxEdge:
			c := t.ChildAt(cur, e.idx)
			if c == jsontree.InvalidNode {
				return jsontree.InvalidNode, false
			}
			cur = c
		default:
			panic("jnl: non-deterministic edge in navigateDet")
		}
		state = e.to
	}
	return cur, true
}
