package jnl

import "jsonlogic/internal/jsontree"

// This file implements the index-planner side of JNL: extracting, from
// a formula, path facts that every satisfying document must obey. The
// extraction is deliberately conservative — it only descends where
// satisfaction *requires* a condition (conjunctions, existentials,
// exact navigation steps) and stops at anything non-deterministic,
// recursive or negated, where a sound anchored fact cannot be named.
// The store uses the facts to prune candidates; correctness never
// depends on extraction being tight, only on every fact being
// necessary.

// RequiredPrefix returns the longest chain of exact navigation steps
// that every α-successor of a node must pass through, and whether the
// chain is complete — complete means the relation can only connect a
// node to the node at exactly those steps (possibly filtered further by
// tests), so a value equality over α pins down the value at the prefix.
//
// Key and non-negative index axes extend the prefix; ε and tests are
// skipped (tests restrict, they do not move); an interval axis X_{lo:hi}
// with lo ≥ 0 contributes the step lo — array positions are dense, so an
// element at any position in [lo,hi] implies one at lo — but ends the
// prefix incomplete. Regex axes, unions, Kleene stars and negative
// indices end the prefix immediately.
func RequiredPrefix(b Binary) (steps []jsontree.Step, complete bool) {
	complete = appendPrefix(b, &steps)
	return steps, complete
}

func appendPrefix(b Binary, steps *[]jsontree.Step) bool {
	switch t := b.(type) {
	case Epsilon:
		return true
	case KeyAxis:
		*steps = append(*steps, jsontree.Key(t.Word))
		return true
	case IndexAxis:
		if t.Index < 0 {
			// Negative indices address from the end; without the array
			// length they name no fixed path.
			return false
		}
		*steps = append(*steps, jsontree.Index(t.Index))
		return true
	case Test:
		// ⟨φ⟩ is a subset of the identity: it filters successors without
		// moving, so the prefix continues through it unchanged.
		return true
	case Concat:
		if !appendPrefix(t.Left, steps) {
			return false
		}
		return appendPrefix(t.Right, steps)
	case RangeAxis:
		// X_{lo:hi} requires an array child at some position ≥ lo;
		// positions are dense (§3.1 condition 3), so position lo exists.
		if t.Lo >= 0 {
			*steps = append(*steps, jsontree.Index(t.Lo))
		}
		return false
	}
	// RegexAxis, Star, Alt: no single exact step is required.
	return false
}

// RequiredFacts returns path facts every tree whose *root* satisfies
// the unary formula must obey. An empty result means no anchored fact
// could be extracted (e.g. the formula is ⊤, a disjunction, or sits
// under negation) and callers must fall back to scanning.
func RequiredFacts(u Unary) []jsontree.PathFact {
	var facts []jsontree.PathFact
	appendUnaryFacts(u, &facts)
	return facts
}

func appendUnaryFacts(u Unary, facts *[]jsontree.PathFact) {
	switch t := u.(type) {
	case And:
		appendUnaryFacts(t.Left, facts)
		appendUnaryFacts(t.Right, facts)
	case Exists:
		if steps, _ := RequiredPrefix(t.Path); len(steps) > 0 {
			*facts = append(*facts, jsontree.PathFact{Steps: steps})
		}
	case EQDoc:
		steps, complete := RequiredPrefix(t.Path)
		if complete {
			// The only possible α-successor is the node at steps, so it
			// must exist and equal the document.
			*facts = append(*facts, jsontree.ValueFacts(steps, t.Doc)...)
		} else if len(steps) > 0 {
			*facts = append(*facts, jsontree.PathFact{Steps: steps})
		}
	case EQPaths:
		// EQ(α, β) requires both sides to have a successor.
		for _, p := range []Binary{t.Left, t.Right} {
			if steps, _ := RequiredPrefix(p); len(steps) > 0 {
				*facts = append(*facts, jsontree.PathFact{Steps: steps})
			}
		}
	}
	// True: trivial. Not, Or: satisfaction does not force any single
	// branch, so no fact is necessary.
}
