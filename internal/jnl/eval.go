package jnl

import (
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/relang"
)

// Evaluator evaluates JNL formulas over one JSON tree. It caches
// per-tree structures shared across evaluations: subtree-equality
// classes (for the EQ predicates) and per-edge regex match marks (the
// preprocessing step of Proposition 3 that lets regex axes be treated as
// ordinary edge labels). An Evaluator is not safe for concurrent use.
type Evaluator struct {
	tree *jsontree.Tree

	// classes[n] is the subtree-equality class of node n: two nodes have
	// the same class iff json(m) = json(n). Built lazily.
	classes []int32

	// regexMarks[re][n] reports whether the edge label into node n
	// matches re. Built lazily per regex.
	regexMarks map[*relang.Regex][]bool

	// opts control the ablation switches.
	opts Options
}

// Options configure evaluation strategy; the zero value is the default
// (fast) configuration. The switches exist so the benchmarks can ablate
// the design choices listed in DESIGN.md.
type Options struct {
	// NaivePairs forces EQ(α,β) to use the general per-node product
	// search even when both paths are deterministic.
	NaivePairs bool
	// NaiveEquality disables subtree-equality classes; EQ predicates
	// compare subtrees with full structural comparison on demand.
	NaiveEquality bool
}

// NewEvaluator returns an Evaluator for the tree.
func NewEvaluator(t *jsontree.Tree) *Evaluator {
	return NewEvaluatorOptions(t, Options{})
}

// NewEvaluatorOptions returns an Evaluator with explicit options.
func NewEvaluatorOptions(t *jsontree.Tree, opts Options) *Evaluator {
	return &Evaluator{tree: t, regexMarks: make(map[*relang.Regex][]bool), opts: opts}
}

// Eval computes ⟦u⟧_J, the set of nodes satisfying the unary formula.
//
// For formulas without EQ(α,β) the algorithm runs in O(|J|·|φ|): each
// unary connective is a bitset operation and each [α]/EQ(α,A) premise is
// one backward reachability pass over the product of the tree with a
// Thompson program compiled from α (Propositions 1 and 3). When EQ(α,β)
// occurs with non-deterministic paths, evaluation falls back to a
// per-node product search (the cubic bound of Proposition 3);
// deterministic EQ(α,β) paths keep the linear path-function algorithm of
// Proposition 1.
func (ev *Evaluator) Eval(u Unary) *NodeSet {
	return ev.evalUnary(u)
}

// Holds reports whether node n satisfies u.
func (ev *Evaluator) Holds(u Unary, n jsontree.NodeID) bool {
	return ev.evalUnary(u).Contains(n)
}

// Eval is a convenience that evaluates u over t with a fresh Evaluator.
func Eval(t *jsontree.Tree, u Unary) *NodeSet {
	return NewEvaluator(t).Eval(u)
}

// Holds reports whether node n of t satisfies u.
func Holds(t *jsontree.Tree, u Unary, n jsontree.NodeID) bool {
	return NewEvaluator(t).Holds(u, n)
}

// Select returns the pairs ⟦b⟧_J restricted to source root: the nodes
// reachable from the root via the binary formula b. This is the
// "path query" entry point used by the JSONPath and MongoDB frontends.
func (ev *Evaluator) Select(b Binary, from jsontree.NodeID) []jsontree.NodeID {
	prog := ev.compile(b)
	return ev.forwardReach(prog, from)
}

func (ev *Evaluator) evalUnary(u Unary) *NodeSet {
	n := ev.tree.Len()
	switch t := u.(type) {
	case True:
		return FullNodeSet(n)
	case Not:
		s := ev.evalUnary(t.Inner)
		s.Negate()
		return s
	case And:
		s := ev.evalUnary(t.Left)
		s.IntersectWith(ev.evalUnary(t.Right))
		return s
	case Or:
		s := ev.evalUnary(t.Left)
		s.UnionWith(ev.evalUnary(t.Right))
		return s
	case Exists:
		prog := ev.compile(t.Path)
		return ev.backwardReach(prog, FullNodeSet(n))
	case EQDoc:
		target := NewNodeSet(n)
		h := t.Doc.Hash()
		sz := t.Doc.Size()
		ev.tree.Walk(func(id jsontree.NodeID) {
			if ev.opts.NaiveEquality {
				if ev.tree.SubtreeSize(id) == sz && ev.tree.EqualsValue(id, t.Doc) {
					target.Add(id)
				}
				return
			}
			if ev.tree.SubtreeHash(id) == h && ev.tree.SubtreeSize(id) == sz && ev.tree.EqualsValue(id, t.Doc) {
				target.Add(id)
			}
		})
		prog := ev.compile(t.Path)
		return ev.backwardReach(prog, target)
	case EQPaths:
		return ev.evalEQPaths(t)
	}
	panic("jnl: unknown unary formula")
}

// subtreeClasses lazily computes the subtree-equality classes of all
// nodes: classes[m] == classes[n] iff json(m) = json(n). Hash buckets
// are verified structurally, so hash collisions cannot merge classes.
func (ev *Evaluator) subtreeClasses() []int32 {
	if ev.classes != nil {
		return ev.classes
	}
	t := ev.tree
	classes := make([]int32, t.Len())
	next := int32(0)
	buckets := make(map[uint64][]jsontree.NodeID)
	for i := 0; i < t.Len(); i++ {
		n := jsontree.NodeID(i)
		h := t.SubtreeHash(n)
		assigned := false
		for _, rep := range buckets[h] {
			if t.SubtreeEqual(rep, n) {
				classes[n] = classes[rep]
				assigned = true
				break
			}
		}
		if !assigned {
			classes[n] = next
			next++
			buckets[h] = append(buckets[h], n)
		}
	}
	ev.classes = classes
	return classes
}

// sameSubtree reports json(m) = json(n) under the configured equality
// strategy.
func (ev *Evaluator) sameSubtree(m, n jsontree.NodeID) bool {
	if ev.opts.NaiveEquality {
		return ev.tree.SubtreeEqualNaive(m, n)
	}
	classes := ev.subtreeClasses()
	return classes[m] == classes[n]
}
