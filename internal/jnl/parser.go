package jnl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// ParseError reports a malformed JNL formula.
type ParseError struct {
	Input  string
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("jnl: parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a unary JNL formula in the concrete syntax:
//
//	unary  := or
//	or     := and ('||' and)*
//	and    := atom ('&&' atom)*
//	atom   := 'true' | '!' atom | '(' unary ')' | '[' binary ']'
//	        | 'eq' '(' binary ',' (binary | JSON) ')'
//	binary := element+                          -- juxtaposition is ∘
//	element:= axis | '<' unary '>' | '(' binary ')' ['*'] | 'eps'
//	axis   := '/' (ident | string | int | '~' string | '[' int ':' int? ']')
//
// Examples: [/name/first], eq(/age, 32), [/~"hobb.*" /[0:]],
// [(/~".*")* <eq(eps, "yoga")>].
func Parse(input string) (Unary, error) {
	p := &fparser{in: input}
	p.skipSpace()
	u, err := p.unary()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected trailing input %q", p.in[p.pos:])
	}
	return u, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Unary {
	u, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return u
}

// ParseBinary parses a binary JNL formula (a path expression).
func ParseBinary(input string) (Binary, error) {
	p := &fparser{in: input}
	p.skipSpace()
	b, err := p.binary()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected trailing input %q", p.in[p.pos:])
	}
	return b, nil
}

// MustParseBinary is ParseBinary but panics on error.
func MustParseBinary(input string) Binary {
	b, err := ParseBinary(input)
	if err != nil {
		panic(err)
	}
	return b
}

type fparser struct {
	in  string
	pos int
}

func (p *fparser) errf(format string, args ...any) error {
	return &ParseError{Input: p.in, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *fparser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *fparser) hasKeyword(kw string) bool {
	if !strings.HasPrefix(p.in[p.pos:], kw) {
		return false
	}
	rest := p.in[p.pos+len(kw):]
	if rest == "" {
		return true
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return !(r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9'))
}

func (p *fparser) unary() (Unary, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.in[p.pos:], "||") {
			return left, nil
		}
		p.pos += 2
		p.skipSpace()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
}

func (p *fparser) andExpr() (Unary, error) {
	left, err := p.unaryAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.in[p.pos:], "&&") {
			return left, nil
		}
		p.pos += 2
		p.skipSpace()
		right, err := p.unaryAtom()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
}

func (p *fparser) unaryAtom() (Unary, error) {
	p.skipSpace()
	switch {
	case p.hasKeyword("true"):
		p.pos += len("true")
		return True{}, nil
	case p.hasKeyword("eq"):
		p.pos += len("eq")
		return p.eqArgs()
	case p.peek() == '!':
		p.pos++
		inner, err := p.unaryAtom()
		if err != nil {
			return nil, err
		}
		return Not{inner}, nil
	case p.peek() == '(':
		p.pos++
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	case p.peek() == '[':
		p.pos++
		path, err := p.binary()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, p.errf("missing ']'")
		}
		p.pos++
		return Exists{path}, nil
	default:
		return nil, p.errf("want a unary formula, got %q", rest(p.in, p.pos))
	}
}

func (p *fparser) eqArgs() (Unary, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return nil, p.errf("want '(' after eq")
	}
	p.pos++
	path, err := p.binary()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != ',' {
		return nil, p.errf("want ',' in eq")
	}
	p.pos++
	p.skipSpace()
	var result Unary
	if c := p.peek(); c == '/' || c == '<' || c == '(' || p.hasKeyword("eps") {
		right, err := p.binary()
		if err != nil {
			return nil, err
		}
		result = EQPaths{path, right}
	} else {
		doc, n, err := jsonval.ParsePrefix(p.in[p.pos:])
		if err != nil {
			return nil, p.errf("bad JSON literal in eq: %v", err)
		}
		p.pos += n
		result = EQDoc{path, doc}
	}
	p.skipSpace()
	if p.peek() != ')' {
		return nil, p.errf("missing ')' after eq arguments")
	}
	p.pos++
	return result, nil
}

func (p *fparser) binary() (Binary, error) {
	var parts []Binary
	for {
		p.skipSpace()
		switch {
		case p.peek() == '/':
			axis, err := p.axis()
			if err != nil {
				return nil, err
			}
			parts = append(parts, axis)
		case p.peek() == '<':
			p.pos++
			inner, err := p.unary()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != '>' {
				return nil, p.errf("missing '>'")
			}
			p.pos++
			parts = append(parts, Test{inner})
		case p.peek() == '(':
			p.pos++
			inner, err := p.binary()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			for p.peek() == '|' {
				p.pos++
				right, err := p.binary()
				if err != nil {
					return nil, err
				}
				inner = Alt{inner, right}
				p.skipSpace()
			}
			if p.peek() != ')' {
				return nil, p.errf("missing ')' in path group")
			}
			p.pos++
			if p.peek() == '*' {
				p.pos++
				inner = Star{inner}
			}
			parts = append(parts, inner)
		case p.hasKeyword("eps"):
			p.pos += len("eps")
			parts = append(parts, Epsilon{})
		default:
			if len(parts) == 0 {
				return nil, p.errf("want a path expression, got %q", rest(p.in, p.pos))
			}
			return Seq(parts...), nil
		}
	}
}

func (p *fparser) axis() (Binary, error) {
	p.pos++ // consume '/'
	switch c := p.peek(); {
	case c == '"':
		w, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return KeyAxis{w}, nil
	case c == '~':
		p.pos++
		pat, err := p.quoted()
		if err != nil {
			return nil, err
		}
		re, err := relang.Compile(pat)
		if err != nil {
			return nil, p.errf("bad regex in axis: %v", err)
		}
		return RegexAxis{re}, nil
	case c == '[':
		p.pos++
		lo, err := p.integer()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ':' {
			return nil, p.errf("want ':' in interval axis")
		}
		p.pos++
		p.skipSpace()
		hi := Inf
		if p.peek() != ']' {
			hi, err = p.integer()
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, p.errf("interval axis with hi < lo")
			}
		}
		if p.peek() != ']' {
			return nil, p.errf("missing ']' in interval axis")
		}
		p.pos++
		if lo < 0 {
			return nil, p.errf("interval axis bounds must be non-negative")
		}
		return RangeAxis{lo, hi}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		i, err := p.integer()
		if err != nil {
			return nil, err
		}
		return IndexAxis{i}, nil
	default:
		start := p.pos
		for p.pos < len(p.in) {
			r, size := utf8.DecodeRuneInString(p.in[p.pos:])
			if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (p.pos > start && r >= '0' && r <= '9') {
				p.pos += size
			} else {
				break
			}
		}
		if p.pos == start {
			return nil, p.errf("want a key, index, regex or interval after '/'")
		}
		return KeyAxis{p.in[start:p.pos]}, nil
	}
}

func (p *fparser) quoted() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("want a quoted string")
	}
	// Reuse the JSON string lexer for escape handling.
	v, n, err := jsonval.ParsePrefix(p.in[p.pos:])
	if err != nil {
		return "", p.errf("bad string: %v", err)
	}
	if !v.IsString() {
		return "", p.errf("want a quoted string")
	}
	p.pos += n
	return v.Str(), nil
}

func (p *fparser) integer() (int, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.in[start] == '-') {
		return 0, p.errf("want an integer")
	}
	n, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, p.errf("integer out of range")
	}
	return n, nil
}

func rest(in string, pos int) string {
	end := pos + 12
	if end > len(in) {
		end = len(in)
	}
	return in[pos:end]
}
