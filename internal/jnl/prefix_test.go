package jnl

import (
	"testing"

	"jsonlogic/internal/jsontree"
)

func steps(b Binary) (string, bool) {
	ss, complete := RequiredPrefix(b)
	f := jsontree.PathFact{Steps: ss}
	return f.String(), complete
}

func TestRequiredPrefix(t *testing.T) {
	cases := []struct {
		src      string
		want     string
		complete bool
	}{
		{`/a /b`, "/a/b", true},
		{`/a /2 /b`, "/a/2/b", true},
		{`eps /a eps`, "/a", true},
		{`/a <true> /b`, "/a/b", true},
		{`/a /[1:3] /b`, "/a/1", false},
		{`/a /~"k.*" /b`, "/a", false},
		{`/a (/b)* /c`, "/a", false},
		{`/a (/b | /c)`, "/a", false},
		{`/-1`, "$", false},
		{`eps`, "$", true},
	}
	for _, c := range cases {
		b, err := ParseBinary(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got, complete := steps(b)
		if got != c.want || complete != c.complete {
			t.Errorf("RequiredPrefix(%q) = %s, %v; want %s, %v", c.src, got, complete, c.want, c.complete)
		}
	}
}

// TestRequiredFactsNecessity spot-checks that extracted facts hold on a
// document satisfying the formula and correctly reject one that lacks
// the paths.
func TestRequiredFactsNecessity(t *testing.T) {
	u := MustParse(`(eq(/a/b, 7) && [/c /0])`)
	facts := RequiredFacts(u)
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	match := jsontree.MustParse(`{"a":{"b":7},"c":["x"]}`)
	if !NewEvaluator(match).Holds(u, match.Root()) {
		t.Fatal("fixture does not match")
	}
	for _, f := range facts {
		if !f.Holds(match) {
			t.Errorf("fact %s must hold on a matching tree", f)
		}
	}
	miss := jsontree.MustParse(`{"a":{"b":8}}`)
	holdsAll := true
	for _, f := range facts {
		if !f.Holds(miss) {
			holdsAll = false
		}
	}
	if holdsAll {
		t.Error("facts should prune the non-matching tree")
	}
}
