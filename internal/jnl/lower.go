package jnl

import "jsonlogic/internal/qir"

// Lowering into the unified query algebra (internal/qir). JNL is the
// paper's common core, so the translation is a direct transliteration:
// unary formulas become predicates, binary formulas become paths, and
// the engine evaluates the result with the shared QIR executor. The
// evaluator in this package remains the differential-test oracle.

// Lower translates a unary formula into a QIR predicate.
func Lower(u Unary) qir.Node {
	switch t := u.(type) {
	case True:
		return qir.True{}
	case Not:
		return qir.Not{Inner: Lower(t.Inner)}
	case And:
		return qir.And{Left: Lower(t.Left), Right: Lower(t.Right)}
	case Or:
		return qir.Or{Left: Lower(t.Left), Right: Lower(t.Right)}
	case Exists:
		return qir.Exists{Path: LowerBinary(t.Path), Inner: qir.True{}}
	case EQDoc:
		return qir.Exists{Path: LowerBinary(t.Path), Inner: qir.ValEq{Doc: t.Doc}}
	case EQPaths:
		return qir.EqPaths{Left: LowerBinary(t.Left), Right: LowerBinary(t.Right)}
	}
	panic("jnl: unknown unary formula")
}

// LowerBinary translates a binary formula into a QIR path.
func LowerBinary(b Binary) qir.Path {
	switch t := b.(type) {
	case Epsilon:
		return qir.Here{}
	case KeyAxis:
		return qir.Key{Word: t.Word}
	case IndexAxis:
		return qir.At{Index: t.Index}
	case RegexAxis:
		return qir.KeyRe{Re: t.Re}
	case RangeAxis:
		return qir.Slice{Lo: t.Lo, Hi: t.Hi}
	case Test:
		return qir.Filter{Cond: Lower(t.Inner)}
	case Concat:
		return qir.SeqOf(LowerBinary(t.Left), LowerBinary(t.Right))
	case Star:
		return qir.Closure{Inner: LowerBinary(t.Inner)}
	case Alt:
		return qir.Union{Alts: []qir.Path{LowerBinary(t.Left), LowerBinary(t.Right)}}
	}
	panic("jnl: unknown binary formula")
}
