package jauto_test

// Witness-soundness fuzzing: the satisfiability procedure's answers are
// claims about the production evaluator, so both polarities are checked
// against it. A SAT verdict hands over a witness document — it must
// actually satisfy the query when run through the engine. An UNSAT
// verdict claims no document matches — cross-checked against a battery
// of random trees, none of which may validate. The target lives in an
// external test package so it can drive the real engine (which itself
// imports jauto) without an import cycle.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsontree"
)

// fuzzUnsatTrees is how many random documents an UNSAT verdict is
// cross-checked against.
const fuzzUnsatTrees = 200

// fuzzSatCaps bounds each satisfiability call. Tighter than the
// defaults so the fuzzer spends its time on many inputs rather than
// deep searches; ErrBudget inputs are skipped, not failed.
func fuzzSatCaps() jauto.Caps {
	c := jauto.DefaultCaps()
	c.MaxSteps = 200000
	return c
}

func FuzzJNLSat(f *testing.F) {
	f.Add(`[/k0]`)
	f.Add(`([/k0] && !([/k0]))`)
	f.Add(`(eq(/a/b, 5) || [/a <eq(eps, "x")>])`)
	f.Add(`[/k0 /[0:2]]`)
	f.Add(`[(/a)* /b]`)
	f.Add(`[/~"k.*" <[/nested]>]`)
	f.Add(`!([/k1] || [/k2 <[/a]>])`)

	eng := engine.New(engine.Options{PlanCacheSize: 256})

	f.Fuzz(func(t *testing.T, src string) {
		u, err := jnl.Parse(src)
		if err != nil {
			return
		}
		if _, err := jauto.JNLToRecursiveJSL(u); err != nil {
			return // outside the decidable fragment (EQ(α,β), test-only loops)
		}
		w, ok, err := jauto.SatisfiableJNLCaps(u, fuzzSatCaps())
		if errors.Is(err, jauto.ErrBudget) {
			return // unknown claims nothing
		}
		if err != nil {
			t.Fatalf("SatisfiableJNL(%q): %v", src, err)
		}
		plan, err := eng.Compile(engine.LangJNL, src)
		if err != nil {
			// The engine rejects what jnl.Parse accepted; the decision
			// procedure made no claim about the engine then.
			return
		}
		if ok {
			tree := jsontree.FromValue(w)
			valid, err := eng.Validate(plan, tree)
			if err != nil {
				t.Fatalf("Validate(%q, witness): %v", src, err)
			}
			if !valid {
				t.Fatalf("SAT witness for %q rejected by the engine: %s", src, w)
			}
			if _, err := eng.Eval(plan, tree); err != nil {
				t.Fatalf("Eval(%q, witness): %v", src, err)
			}
			return
		}
		// UNSAT is a universal claim: no random document may validate.
		h := fnv.New64a()
		fmt.Fprint(h, src)
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		opts := gen.DocOptions{Fanout: 3, Depth: 3, Keys: 12, ArrayBias: 40, ValueRange: 20}
		for i := 0; i < fuzzUnsatTrees; i++ {
			tree := jsontree.FromValue(gen.Document(r, opts))
			valid, err := eng.Validate(plan, tree)
			if err != nil {
				t.Fatalf("Validate(%q, random doc): %v", src, err)
			}
			if valid {
				t.Fatalf("UNSAT verdict for %q refuted by random document %d", src, i)
			}
		}
	})
}
