package jauto_test

// Runnable godoc examples for the satisfiability entry points — the
// public-facing surface the semantic planner is built on. `go test
// ./internal/jauto/` executes these, so the documentation cannot rot.

import (
	"fmt"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
)

// Decide satisfiability of JNL queries. A satisfiable query comes
// back with a synthesized witness document (independently re-verified
// against the query before it is returned); a self-contradictory one
// is refuted outright — the semantic planner compiles such queries
// to a constant-empty program.
func ExampleSatisfiableJNL() {
	sat := jnl.MustParse(`[/user/name] && eq(/user/age, 34)`)
	w, ok, err := jauto.SatisfiableJNL(sat)
	if err != nil {
		panic(err)
	}
	fmt.Println("satisfiable:", ok, "witness:", w)

	unsat := jnl.MustParse(`[/k0] && !([/k0])`)
	_, ok, err = jauto.SatisfiableJNL(unsat)
	if err != nil {
		panic(err)
	}
	fmt.Println("satisfiable:", ok)
	// Output:
	// satisfiable: true witness: {"user":{"age":34,"name":0}}
	// satisfiable: false
}
