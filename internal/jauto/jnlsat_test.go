package jauto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

func mustJNL(t *testing.T, src string) jnl.Unary {
	t.Helper()
	u, err := jnl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return u
}

// TestSatisfiableJNLTable covers the JNL→recursive-JSL conversion across
// every binary constructor, with witnesses re-checked by the evaluator.
func TestSatisfiableJNLTable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`true`, true},
		{`[/a]`, true},
		{`[/a/0]`, true},
		{`[/a/[1:3]]`, true},
		{`[/~"x|y" /b]`, true},
		{`[(/a)*]`, true},
		{`[(/a)* <eq(eps, 7)>]`, true},
		{`eq(/a, {"b": [1]})`, true},
		{`eq(eps, "x") && eq(eps, "y")`, false},
		{`[/a<[/0]>] && [/a<[/b]>]`, false}, // the paper's key-uniqueness conflict
		{`[/a] && ![/a]`, false},
		{`![/a] || [/a]`, true},
		{`eq(/a, 1) && eq(/a, 2)`, false},
		{`[<eq(eps,1)> /a]`, false}, // a number has no children
		{`[(/a /b)*] && eq(/a/b/a/b, 5)`, true},
	}
	for _, c := range cases {
		u := mustJNL(t, c.src)
		w, got, err := SatisfiableJNL(u)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: satisfiable=%v, want %v", c.src, got, c.want)
			continue
		}
		if got {
			tree := jsontree.FromValue(w)
			if !jnl.Holds(tree, u, tree.Root()) {
				t.Errorf("%s: witness %s does not satisfy the formula", c.src, w)
			}
		}
	}
}

// TestSatisfiableJNLAlt covers path unions, which have no concrete
// syntax and are built on the AST.
func TestSatisfiableJNLAlt(t *testing.T) {
	u := jnl.Exists{Path: jnl.Alt{
		Left:  jnl.Key("a"),
		Right: jnl.Concat{Left: jnl.Key("b"), Right: jnl.At(0)},
	}}
	w, sat, err := SatisfiableJNL(u)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	tree := jsontree.FromValue(w)
	if !jnl.Holds(tree, u, tree.Root()) {
		t.Fatalf("witness %s does not satisfy the union formula", w)
	}
}

func TestSatisfiableJNLRejectsEQPaths(t *testing.T) {
	u := mustJNL(t, `eq(/a, /b)`)
	if _, _, err := SatisfiableJNL(u); err == nil {
		t.Fatal("EQ(α,β) satisfiability must be refused (undecidable, Prop 4)")
	}
}

func TestSatisfiableJNLNegativeIndex(t *testing.T) {
	u := jnl.Exists{Path: jnl.At(-1)}
	if _, _, err := SatisfiableJNL(u); err == nil {
		t.Fatal("negative index must be refused in satisfiability")
	}
}

func TestSimplifyStars(t *testing.T) {
	// Axis-free star becomes epsilon.
	b := simplifyStars(jnl.Star{Inner: jnl.Test{Inner: jnl.True{}}})
	if _, ok := b.(jnl.Epsilon); !ok {
		t.Errorf("test-only star should simplify to eps, got %T", b)
	}
	// Nested stars flatten.
	b = simplifyStars(jnl.Star{Inner: jnl.Star{Inner: jnl.Key("a")}})
	if s, ok := b.(jnl.Star); !ok {
		t.Errorf("(a*)* should stay a star, got %T", b)
	} else if _, inner := s.Inner.(jnl.KeyAxis); !inner {
		t.Errorf("(a*)* should flatten to a*, got inner %T", s.Inner)
	}
	// Stars under Alt and Concat are reached.
	b = simplifyStars(jnl.Alt{
		Left:  jnl.Concat{Left: jnl.Star{Inner: jnl.Test{Inner: jnl.True{}}}, Right: jnl.Key("a")},
		Right: jnl.Key("b"),
	})
	if !hasAxis(b) {
		t.Error("simplification lost the axes")
	}
	if hasAxis(jnl.Test{Inner: jnl.True{}}) || hasAxis(jnl.Epsilon{}) {
		t.Error("tests and eps have no axis")
	}
}

func TestCompileFormulaAndCaps(t *testing.T) {
	a, err := CompileFormula(jsl.And{Left: jsl.IsObj{}, Right: jsl.MinCh{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() == 0 {
		t.Error("compiled automaton has no states")
	}
	// Accepts: {"k":1} yes, {} no, "x" no.
	for doc, want := range map[string]bool{
		`{"k":1}`: true,
		`{}`:      false,
		`"x"`:     false,
	} {
		tree := jsontree.MustParse(doc)
		got, err := a.Accepts(tree)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Accepts(%s) = %v, want %v", doc, got, want)
		}
	}
	// A tiny step budget must surface ErrBudget, not a guess.
	big := jsl.Formula(jsl.True{})
	for i := 0; i < 12; i++ {
		big = jsl.Or{
			Left:  jsl.And{Left: big, Right: jsl.DiaWord("a", jsl.True{})},
			Right: jsl.And{Left: big, Right: jsl.DiaWord("b", jsl.MinCh{K: 2})},
		}
	}
	hard, err := CompileFormula(big)
	if err != nil {
		t.Fatal(err)
	}
	hard.SetCaps(Caps{MaxKeysPerLanguage: 1, MaxNumberScan: 4, MaxArrayLen: 2, MaxSteps: 3})
	if _, _, err := hard.Nonempty(); err != ErrBudget {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

// TestWitnessSoundnessQuick: whenever the solver says SAT for a random
// deterministic JNL formula, the witness satisfies it; whenever it says
// UNSAT, a brute-force search over small documents finds no model.
func TestWitnessSoundnessQuick(t *testing.T) {
	f := func(c jnlSatCase) bool {
		w, sat, err := SatisfiableJNL(c.u)
		if err != nil {
			return true // budget: no verdict
		}
		if sat {
			tree := jsontree.FromValue(w)
			if !jnl.Holds(tree, c.u, tree.Root()) {
				t.Logf("formula %s: bad witness %s", jnl.String(c.u), w)
				return false
			}
			return true
		}
		// UNSAT: exhaustively check small candidate documents.
		for _, doc := range smallDocs() {
			tree := jsontree.FromValue(doc)
			if jnl.Holds(tree, c.u, tree.Root()) {
				t.Logf("formula %s: solver said UNSAT but %s is a model", jnl.String(c.u), doc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

type jnlSatCase struct{ u jnl.Unary }

func (jnlSatCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(jnlSatCase{u: randJNLSatFormula(r, 3)})
}

func randJNLSatFormula(r *rand.Rand, depth int) jnl.Unary {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return jnl.True{}
		case 1:
			return jnl.Exists{Path: jnl.Key([]string{"a", "b"}[r.Intn(2)])}
		default:
			return jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(uint64(r.Intn(2)))}
		}
	}
	switch r.Intn(6) {
	case 0:
		return jnl.Not{Inner: randJNLSatFormula(r, depth-1)}
	case 1:
		return jnl.And{Left: randJNLSatFormula(r, depth-1), Right: randJNLSatFormula(r, depth-1)}
	case 2:
		return jnl.Or{Left: randJNLSatFormula(r, depth-1), Right: randJNLSatFormula(r, depth-1)}
	case 3:
		return jnl.Exists{Path: jnl.Concat{
			Left:  jnl.Key([]string{"a", "b"}[r.Intn(2)]),
			Right: jnl.Test{Inner: randJNLSatFormula(r, depth-1)},
		}}
	case 4:
		return jnl.EQDoc{Path: jnl.Key([]string{"a", "b"}[r.Intn(2)]), Doc: jsonval.Num(uint64(r.Intn(2)))}
	default:
		return jnl.Exists{Path: jnl.At(r.Intn(2))}
	}
}

// smallDocs enumerates a family of small documents used to cross-check
// UNSAT verdicts.
func smallDocs() []*jsonval.Value {
	leaves := []*jsonval.Value{
		jsonval.Num(0), jsonval.Num(1), jsonval.Str("a"), jsonval.MustObj(), jsonval.Arr(),
	}
	var docs []*jsonval.Value
	docs = append(docs, leaves...)
	for _, a := range leaves {
		for _, b := range leaves {
			docs = append(docs,
				jsonval.MustObj(jsonval.Member{Key: "a", Value: a}, jsonval.Member{Key: "b", Value: b}),
				jsonval.Arr(a, b),
			)
		}
	}
	for _, inner := range docs[:len(leaves)] {
		docs = append(docs, jsonval.MustObj(jsonval.Member{Key: "a", Value: jsonval.MustObj(
			jsonval.Member{Key: "b", Value: inner},
		)}))
	}
	return docs
}
