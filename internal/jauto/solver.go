package jauto

import (
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Caps bound the enumeration performed by the non-emptiness search.
// They realize the small-model arguments of the appendix (witness keys
// per key language, number-range scans, array widths); a search that
// exhausts a cap reports ErrBudget rather than guessing.
type Caps struct {
	// MaxKeysPerLanguage bounds how many distinct witness keys are drawn
	// from one key regex when assigning object children.
	MaxKeysPerLanguage int
	// MaxNumberScan bounds the candidate scan for numeric constraints.
	MaxNumberScan uint64
	// MaxArrayLen bounds synthesized array widths.
	MaxArrayLen int
	// MaxSteps bounds the total number of sat() expansions.
	MaxSteps int
}

// DefaultCaps are sufficient for every construction in the paper's
// proofs at the sizes exercised by the benchmarks.
func DefaultCaps() Caps {
	return Caps{
		MaxKeysPerLanguage: 4,
		MaxNumberScan:      1 << 16,
		MaxArrayLen:        12,
		MaxSteps:           2_000_000,
	}
}

type solver struct {
	defs    map[string]jsl.Formula
	nnfMemo map[string]nf // keyed by name + polarity
	caps    Caps

	memoSAT   map[string]*jsonval.Value
	memoUNSAT map[string]bool
	stack     map[string]bool

	steps    int
	exceeded bool
}

func newSolver(defs map[string]jsl.Formula, caps Caps) *solver {
	return &solver{
		defs:      defs,
		nnfMemo:   map[string]nf{},
		caps:      caps,
		memoSAT:   map[string]*jsonval.Value{},
		memoUNSAT: map[string]bool{},
		stack:     map[string]bool{},
	}
}

func (s *solver) defNNF(name string, neg bool) nf {
	key := name
	if neg {
		key = "!" + name
	}
	if f, ok := s.nnfMemo[key]; ok {
		return f
	}
	body, ok := s.defs[name]
	if !ok {
		return nfFalse{}
	}
	f := toNNF(body, neg)
	s.nnfMemo[key] = f
	return f
}

// sat decides satisfiability of a conjunction of obligations, returning
// a witness value. tainted reports that the result relied on a cycle cut
// or budget exhaustion somewhere beneath, making an UNSAT answer
// non-cacheable.
func (s *solver) sat(obls []nf) (w *jsonval.Value, ok, tainted bool) {
	s.steps++
	if s.steps > s.caps.MaxSteps {
		s.exceeded = true
		return nil, false, true
	}
	key := renderSet(obls)
	if w, hit := s.memoSAT[key]; hit {
		return w, true, false
	}
	if s.memoUNSAT[key] {
		return nil, false, false
	}
	if s.stack[key] {
		// The same obligation set reappeared strictly deeper in the
		// candidate tree: under the least-fixpoint semantics of §5.3 an
		// infinite regeneration cannot witness satisfiability.
		return nil, false, true
	}
	s.stack[key] = true
	defer delete(s.stack, key)

	w, ok, tainted = s.saturate(obls, &atoms{maxCh: maxInt})
	if ok {
		s.memoSAT[key] = w
		return w, true, false
	}
	if !tainted {
		s.memoUNSAT[key] = true
	}
	return nil, false, tainted
}

const maxInt = int(^uint(0) >> 1)

// atoms accumulates the atomic obligations of one saturation branch.
type atoms struct {
	posKinds []jsl.Formula // IsObj/IsArr/IsStr/IsInt occurrences
	negKinds []jsl.Formula

	patPos, patNeg []*relang.Regex

	minB, maxB     *uint64
	multPos        []uint64
	negMin, negMax []uint64
	negMult        []uint64

	minCh, maxCh int

	uniquePos, uniqueNeg bool

	eqPos, eqNeg []*jsonval.Value

	diaKey []nfDia
	boxKey []nfBox
	diaIdx []nfDia
	boxIdx []nfBox
}

func (a *atoms) clone() *atoms {
	b := *a
	b.posKinds = clip(a.posKinds)
	b.negKinds = clip(a.negKinds)
	b.patPos = clip(a.patPos)
	b.patNeg = clip(a.patNeg)
	b.multPos = clip(a.multPos)
	b.negMin = clip(a.negMin)
	b.negMax = clip(a.negMax)
	b.negMult = clip(a.negMult)
	b.eqPos = clip(a.eqPos)
	b.eqNeg = clip(a.eqNeg)
	b.diaKey = clip(a.diaKey)
	b.boxKey = clip(a.boxKey)
	b.diaIdx = clip(a.diaIdx)
	b.boxIdx = clip(a.boxIdx)
	return &b
}

func clip[T any](xs []T) []T { return xs[:len(xs):len(xs)] }

// saturate processes non-atomic obligations, branching on disjunctions,
// then hands the collected atoms to the kind solvers.
func (s *solver) saturate(pending []nf, a *atoms) (*jsonval.Value, bool, bool) {
	s.steps++
	if s.steps > s.caps.MaxSteps {
		s.exceeded = true
		return nil, false, true
	}
	// Disjunctions are deferred until every conjunctive obligation has
	// been absorbed into the atom accumulator, so contradictions between
	// units (e.g. MinCh/MaxCh bounds) prune a branch before it fans out.
	var ors []nfOr
	for len(pending) > 0 {
		f := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		switch t := f.(type) {
		case nfTrue:
		case nfFalse:
			return nil, false, false
		case nfAnd:
			pending = append(pending, t.left, t.right)
		case nfOr:
			ors = append(ors, t)
		case nfRef:
			pending = append(pending, s.defNNF(t.name, t.neg))
		case nfDia:
			if t.re != nil {
				a.diaKey = append(a.diaKey, t)
			} else {
				a.diaIdx = append(a.diaIdx, t)
			}
		case nfBox:
			if t.re != nil {
				a.boxKey = append(a.boxKey, t)
			} else {
				a.boxIdx = append(a.boxIdx, t)
			}
		case nfTest:
			if !s.addTest(a, t) {
				return nil, false, false
			}
		}
	}
	if len(ors) > 0 {
		// Branch on the last deferred disjunction: try the left
		// disjunct, then the right, with the remaining disjunctions
		// still pending.
		t := ors[len(ors)-1]
		rest := make([]nf, 0, len(ors))
		for _, o := range ors[:len(ors)-1] {
			rest = append(rest, o)
		}
		w, ok, taintL := s.saturate(append(append([]nf{}, rest...), t.left), a.clone())
		if ok {
			return w, true, false
		}
		w, ok, taintR := s.saturate(append(append([]nf{}, rest...), t.right), a.clone())
		return w, ok, taintL || taintR
	}
	return s.solveAtoms(a)
}

// addTest folds a node-test atom into the accumulator; false means the
// branch is already contradictory.
func (s *solver) addTest(a *atoms, t nfTest) bool {
	switch test := t.test.(type) {
	case jsl.IsObj, jsl.IsArr, jsl.IsStr, jsl.IsInt:
		if t.neg {
			a.negKinds = append(a.negKinds, t.test)
		} else {
			a.posKinds = append(a.posKinds, t.test)
		}
	case jsl.Unique:
		if t.neg {
			a.uniqueNeg = true
		} else {
			a.uniquePos = true
		}
	case jsl.Pattern:
		if t.neg {
			a.patNeg = append(a.patNeg, test.Re)
		} else {
			a.patPos = append(a.patPos, test.Re)
		}
	case jsl.Min:
		if t.neg {
			a.negMin = append(a.negMin, test.I)
		} else if a.minB == nil || *a.minB < test.I {
			i := test.I
			a.minB = &i
		}
	case jsl.Max:
		if t.neg {
			a.negMax = append(a.negMax, test.I)
		} else if a.maxB == nil || *a.maxB > test.I {
			i := test.I
			a.maxB = &i
		}
	case jsl.MultOf:
		if t.neg {
			a.negMult = append(a.negMult, test.I)
		} else {
			a.multPos = append(a.multPos, test.I)
		}
	case jsl.MinCh:
		if t.neg {
			// ¬MinCh(k): fewer than k children.
			if test.K == 0 {
				return false
			}
			if test.K-1 < a.maxCh {
				a.maxCh = test.K - 1
			}
		} else if test.K > a.minCh {
			a.minCh = test.K
		}
	case jsl.MaxCh:
		if t.neg {
			// ¬MaxCh(k): more than k children.
			if test.K+1 > a.minCh {
				a.minCh = test.K + 1
			}
		} else if test.K < a.maxCh {
			a.maxCh = test.K
		}
	case jsl.EqDoc:
		if t.neg {
			a.eqNeg = append(a.eqNeg, test.Doc)
		} else {
			a.eqPos = append(a.eqPos, test.Doc)
		}
	default:
		return false
	}
	return a.minCh <= a.maxCh
}

// kindOf maps a kind test to the jsonval kind it asserts.
func kindOf(f jsl.Formula) jsonval.Kind {
	switch f.(type) {
	case jsl.IsObj:
		return jsonval.Object
	case jsl.IsArr:
		return jsonval.Array
	case jsl.IsStr:
		return jsonval.String
	default:
		return jsonval.Number
	}
}

// solveAtoms picks a node kind consistent with the atoms and synthesizes
// a witness of that kind.
func (s *solver) solveAtoms(a *atoms) (*jsonval.Value, bool, bool) {
	// A positive ~(A): the witness must be A itself; check the
	// remaining obligations directly on A.
	if len(a.eqPos) > 0 {
		doc := a.eqPos[0]
		for _, other := range a.eqPos[1:] {
			if !jsonval.Equal(doc, other) {
				return nil, false, false
			}
		}
		if s.valueMeetsAtoms(doc, a) {
			return doc, true, false
		}
		return nil, false, false
	}

	allowed := map[jsonval.Kind]bool{
		jsonval.Object: true, jsonval.Array: true,
		jsonval.String: true, jsonval.Number: true,
	}
	for _, k := range a.negKinds {
		allowed[kindOf(k)] = false
	}
	if len(a.posKinds) > 0 {
		want := kindOf(a.posKinds[0])
		for _, k := range a.posKinds[1:] {
			if kindOf(k) != want {
				return nil, false, false
			}
		}
		for k := range allowed {
			if k != want {
				allowed[k] = false
			}
		}
	}
	// Positive atoms narrow the kind further.
	if len(a.patPos) > 0 {
		restrict(allowed, jsonval.String)
	}
	if a.minB != nil || a.maxB != nil || len(a.multPos) > 0 {
		restrict(allowed, jsonval.Number)
	}
	if a.uniquePos {
		restrict(allowed, jsonval.Array)
	}
	if len(a.diaKey) > 0 {
		restrict(allowed, jsonval.Object)
	}
	if len(a.diaIdx) > 0 {
		restrict(allowed, jsonval.Array)
	}
	if a.minCh > 0 {
		allowed[jsonval.String] = false
		allowed[jsonval.Number] = false
	}

	tainted := false
	// Prefer scalars (smallest witnesses) before containers.
	if allowed[jsonval.Number] {
		if w, ok := s.solveNumber(a); ok {
			return w, true, false
		}
	}
	if allowed[jsonval.String] {
		if w, ok := s.solveString(a); ok {
			return w, true, false
		}
	}
	if allowed[jsonval.Object] {
		w, ok, t := s.solveObject(a)
		tainted = tainted || t
		if ok {
			return w, true, false
		}
	}
	if allowed[jsonval.Array] {
		w, ok, t := s.solveArray(a)
		tainted = tainted || t
		if ok {
			return w, true, false
		}
	}
	return nil, false, tainted
}

func restrict(allowed map[jsonval.Kind]bool, k jsonval.Kind) {
	for kk := range allowed {
		if kk != k {
			allowed[kk] = false
		}
	}
}

// valueMeetsAtoms checks every accumulated atom against a concrete value
// (used for positive ~(A) and as a final safety check).
func (s *solver) valueMeetsAtoms(v *jsonval.Value, a *atoms) bool {
	for _, k := range a.posKinds {
		if v.Kind() != kindOf(k) {
			return false
		}
	}
	for _, k := range a.negKinds {
		if v.Kind() == kindOf(k) {
			return false
		}
	}
	for _, re := range a.patPos {
		if !v.IsString() || !re.Match(v.Str()) {
			return false
		}
	}
	for _, re := range a.patNeg {
		if v.IsString() && re.Match(v.Str()) {
			return false
		}
	}
	if a.minB != nil && (!v.IsNumber() || v.Num() < *a.minB) {
		return false
	}
	if a.maxB != nil && (!v.IsNumber() || v.Num() > *a.maxB) {
		return false
	}
	for _, m := range a.multPos {
		if !v.IsNumber() || !isMultiple(v.Num(), m) {
			return false
		}
	}
	for _, i := range a.negMin {
		if v.IsNumber() && v.Num() >= i {
			return false
		}
	}
	for _, i := range a.negMax {
		if v.IsNumber() && v.Num() <= i {
			return false
		}
	}
	for _, m := range a.negMult {
		if v.IsNumber() && isMultiple(v.Num(), m) {
			return false
		}
	}
	// Len is 0 for scalars, matching "no children".
	if v.Len() < a.minCh || v.Len() > a.maxCh {
		return false
	}
	if a.uniquePos && !(v.IsArray() && elemsUnique(v)) {
		return false
	}
	if a.uniqueNeg && v.IsArray() && elemsUnique(v) {
		return false
	}
	for _, d := range a.eqPos {
		if !jsonval.Equal(v, d) {
			return false
		}
	}
	for _, d := range a.eqNeg {
		if jsonval.Equal(v, d) {
			return false
		}
	}
	for _, d := range a.diaKey {
		if !s.evalNF(v, d) {
			return false
		}
	}
	for _, b := range a.boxKey {
		if !s.evalNF(v, b) {
			return false
		}
	}
	for _, d := range a.diaIdx {
		if !s.evalNF(v, d) {
			return false
		}
	}
	for _, b := range a.boxIdx {
		if !s.evalNF(v, b) {
			return false
		}
	}
	return true
}

func isMultiple(n, m uint64) bool {
	if m == 0 {
		return n == 0
	}
	return n%m == 0
}

func elemsUnique(v *jsonval.Value) bool {
	elems := v.Elems()
	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			if jsonval.Equal(elems[i], elems[j]) {
				return false
			}
		}
	}
	return true
}

// evalNF evaluates an NNF formula on a concrete value, expanding
// references (used to re-check synthesized witnesses).
func (s *solver) evalNF(v *jsonval.Value, f nf) bool {
	switch t := f.(type) {
	case nfTrue:
		return true
	case nfFalse:
		return false
	case nfAnd:
		return s.evalNF(v, t.left) && s.evalNF(v, t.right)
	case nfOr:
		return s.evalNF(v, t.left) || s.evalNF(v, t.right)
	case nfRef:
		return s.evalNF(v, s.defNNF(t.name, t.neg))
	case nfDia:
		if t.re != nil {
			if !v.IsObject() {
				return false
			}
			for _, m := range v.Members() {
				if t.re.Match(m.Key) && s.evalNF(m.Value, t.inner) {
					return true
				}
			}
			return false
		}
		if !v.IsArray() {
			return false
		}
		for p, e := range v.Elems() {
			if p >= t.lo && (t.hi == jsl.Inf || p <= t.hi) && s.evalNF(e, t.inner) {
				return true
			}
		}
		return false
	case nfBox:
		if t.re != nil {
			if !v.IsObject() {
				return true
			}
			for _, m := range v.Members() {
				if t.re.Match(m.Key) && !s.evalNF(m.Value, t.inner) {
					return false
				}
			}
			return true
		}
		if !v.IsArray() {
			return true
		}
		for p, e := range v.Elems() {
			if p >= t.lo && (t.hi == jsl.Inf || p <= t.hi) && !s.evalNF(e, t.inner) {
				return false
			}
		}
		return true
	case nfTest:
		var a atoms
		a.maxCh = maxInt
		if !s.addTest(&a, t) {
			return false
		}
		return s.valueMeetsAtoms(v, &a)
	}
	return false
}
