// Package jauto implements the J-automata of the appendix of the paper
// (proof of Proposition 10) and, on top of them, the satisfiability
// procedures of Propositions 2, 5, 7 and 10.
//
// A J-automaton's states correspond to the closure (the set of
// subformulas in negation normal form) of a recursive JSL expression;
// its transition rules are the formulas themselves (Lemmas 4 and 5 build
// exactly one state per connective). Non-emptiness is decided by a
// goal-directed expansion of obligation sets — the formula-level view of
// the appendix' reachable-subset construction — with memoization of
// solved obligation sets and synthesis of a concrete witness document.
// Every positive answer carries a witness that callers can (and our
// tests do) re-verify with the JSL evaluator, so false positives are
// impossible by construction; the search is exhaustive up to the
// documented Caps, which bound key/number/array-width enumeration.
package jauto

import (
	"fmt"
	"sort"
	"strings"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/relang"
)

// nf is a JSL formula in negation normal form: negation occurs only on
// atoms (node tests and references).
type nf interface{ nfNode() }

type nfTrue struct{}

type nfFalse struct{}

// nfTest is a possibly negated node test. The test field holds one of
// the jsl NodeTest types (IsObj, Pattern, Min, EqDoc, …).
type nfTest struct {
	test jsl.Formula
	neg  bool
}

type nfAnd struct{ left, right nf }

type nfOr struct{ left, right nf }

// nfDia is ◇ over keys (re != nil) or indices.
type nfDia struct {
	re     *relang.Regex
	word   string
	isWord bool
	lo, hi int // when re == nil; hi == jsl.Inf for +∞
	inner  nf
}

// nfBox is ◻ over keys or indices.
type nfBox struct {
	re     *relang.Regex
	word   string
	isWord bool
	lo, hi int
	inner  nf
}

// nfRef is a possibly negated reference to a definition.
type nfRef struct {
	name string
	neg  bool
}

func (nfTrue) nfNode()  {}
func (nfFalse) nfNode() {}
func (nfTest) nfNode()  {}
func (nfAnd) nfNode()   {}
func (nfOr) nfNode()    {}
func (nfDia) nfNode()   {}
func (nfBox) nfNode()   {}
func (nfRef) nfNode()   {}

// toNNF converts a JSL formula to negation normal form; neg requests the
// negation of f. The dualities used are those of §5.2: ¬◇_e φ ≡ ◻_e ¬φ
// and ¬◻_e φ ≡ ◇_e ¬φ (both directions hold including on nodes of the
// wrong kind, where ◇ is false and ◻ vacuously true).
func toNNF(f jsl.Formula, neg bool) nf {
	switch t := f.(type) {
	case jsl.True:
		if neg {
			return nfFalse{}
		}
		return nfTrue{}
	case jsl.Not:
		return toNNF(t.Inner, !neg)
	case jsl.And:
		if neg {
			return nfOr{toNNF(t.Left, true), toNNF(t.Right, true)}
		}
		return nfAnd{toNNF(t.Left, false), toNNF(t.Right, false)}
	case jsl.Or:
		if neg {
			return nfAnd{toNNF(t.Left, true), toNNF(t.Right, true)}
		}
		return nfOr{toNNF(t.Left, false), toNNF(t.Right, false)}
	case jsl.DiamondKey:
		inner := toNNF(t.Inner, neg)
		if neg {
			return nfBox{re: t.Re, word: t.Word, isWord: t.IsWord, inner: inner}
		}
		return nfDia{re: t.Re, word: t.Word, isWord: t.IsWord, inner: inner}
	case jsl.BoxKey:
		inner := toNNF(t.Inner, neg)
		if neg {
			return nfDia{re: t.Re, word: t.Word, isWord: t.IsWord, inner: inner}
		}
		return nfBox{re: t.Re, word: t.Word, isWord: t.IsWord, inner: inner}
	case jsl.DiamondIdx:
		inner := toNNF(t.Inner, neg)
		if neg {
			return nfBox{lo: t.Lo, hi: t.Hi, inner: inner}
		}
		return nfDia{lo: t.Lo, hi: t.Hi, inner: inner}
	case jsl.BoxIdx:
		inner := toNNF(t.Inner, neg)
		if neg {
			return nfDia{lo: t.Lo, hi: t.Hi, inner: inner}
		}
		return nfBox{lo: t.Lo, hi: t.Hi, inner: inner}
	case jsl.Ref:
		return nfRef{name: t.Name, neg: neg}
	default:
		// Node tests are atoms.
		return nfTest{test: f, neg: neg}
	}
}

// render produces a canonical string for an nf formula, used as a
// memoization key for obligation sets.
func render(f nf, sb *strings.Builder) {
	switch t := f.(type) {
	case nfTrue:
		sb.WriteString("T")
	case nfFalse:
		sb.WriteString("F")
	case nfTest:
		if t.neg {
			sb.WriteByte('!')
		}
		sb.WriteString(jsl.String(t.test))
	case nfAnd:
		sb.WriteString("(&")
		render(t.left, sb)
		sb.WriteByte(' ')
		render(t.right, sb)
		sb.WriteByte(')')
	case nfOr:
		sb.WriteString("(|")
		render(t.left, sb)
		sb.WriteByte(' ')
		render(t.right, sb)
		sb.WriteByte(')')
	case nfDia:
		sb.WriteString("(D")
		renderModal(t.re, t.word, t.isWord, t.lo, t.hi, sb)
		render(t.inner, sb)
		sb.WriteByte(')')
	case nfBox:
		sb.WriteString("(B")
		renderModal(t.re, t.word, t.isWord, t.lo, t.hi, sb)
		render(t.inner, sb)
		sb.WriteByte(')')
	case nfRef:
		if t.neg {
			sb.WriteByte('!')
		}
		sb.WriteByte('@')
		sb.WriteString(t.name)
	}
}

func renderModal(re *relang.Regex, word string, isWord bool, lo, hi int, sb *strings.Builder) {
	switch {
	case isWord:
		fmt.Fprintf(sb, "%q ", word)
	case re != nil:
		fmt.Fprintf(sb, "~%q ", re.String())
	default:
		fmt.Fprintf(sb, "[%d:%d] ", lo, hi)
	}
}

func renderSet(obls []nf) string {
	keys := make([]string, len(obls))
	for i, o := range obls {
		var sb strings.Builder
		render(o, &sb)
		keys[i] = sb.String()
	}
	sort.Strings(keys)
	// Deduplicate identical obligations.
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return strings.Join(out, "\x00")
}

// sizeNF returns the number of nodes of an nf formula.
func sizeNF(f nf) int {
	switch t := f.(type) {
	case nfAnd:
		return 1 + sizeNF(t.left) + sizeNF(t.right)
	case nfOr:
		return 1 + sizeNF(t.left) + sizeNF(t.right)
	case nfDia:
		return 1 + sizeNF(t.inner)
	case nfBox:
		return 1 + sizeNF(t.inner)
	default:
		return 1
	}
}
