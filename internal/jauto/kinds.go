package jauto

import (
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// solveString synthesizes a string witness: a member of the
// intersection of the positive patterns and the complements of the
// negative ones, distinct from every negated ~(A) string.
func (s *solver) solveString(a *atoms) (*jsonval.Value, bool) {
	if a.minCh > 0 || a.uniquePos {
		return nil, false
	}
	if a.minB != nil || a.maxB != nil || len(a.multPos) > 0 {
		return nil, false
	}
	lang := relang.Any()
	for _, re := range a.patPos {
		lang = lang.Intersect(re)
	}
	for _, re := range a.patNeg {
		lang = lang.Intersect(re.Complement())
	}
	exclude := map[string]bool{}
	for _, d := range a.eqNeg {
		if d.IsString() {
			exclude[d.Str()] = true
		}
	}
	for _, cand := range lang.Enumerate(len(exclude) + 1) {
		if !exclude[cand] {
			return jsonval.Str(cand), true
		}
	}
	return nil, false
}

// solveNumber synthesizes a numeric witness by scanning candidates from
// the lower bound upward, bounded by Caps.MaxNumberScan. The scan is
// exhaustive for the constraint system when it terminates within the
// window: any solution is within lcm-range of the lower bound.
func (s *solver) solveNumber(a *atoms) (*jsonval.Value, bool) {
	if a.minCh > 0 || a.uniquePos || len(a.patPos) > 0 {
		return nil, false
	}
	lo := uint64(0)
	if a.minB != nil {
		lo = *a.minB
	}
	// negMax entries i require n > i.
	for _, i := range a.negMax {
		if i+1 > lo {
			lo = i + 1
		}
	}
	hi := lo + s.caps.MaxNumberScan
	if a.maxB != nil && *a.maxB < hi {
		hi = *a.maxB
	}
	for _, i := range a.negMin {
		// n < i required.
		if i == 0 {
			return nil, false
		}
		if i-1 < hi {
			hi = i - 1
		}
	}
	exclude := map[uint64]bool{}
	for _, d := range a.eqNeg {
		if d.IsNumber() {
			exclude[d.Num()] = true
		}
	}
	for n := lo; n <= hi; n++ {
		ok := !exclude[n]
		for _, m := range a.multPos {
			if !isMultiple(n, m) {
				ok = false
				break
			}
		}
		if ok {
			for _, m := range a.negMult {
				if isMultiple(n, m) {
					ok = false
					break
				}
			}
		}
		if ok {
			return jsonval.Num(n), true
		}
		if n == ^uint64(0) {
			break
		}
	}
	return nil, false
}

// solveObject synthesizes an object witness: each key diamond is
// assigned a key from its language, boxes constrain matching keys,
// MinCh is met by padding with fresh keys.
func (s *solver) solveObject(a *atoms) (*jsonval.Value, bool, bool) {
	if a.uniquePos || len(a.diaIdx) > 0 {
		return nil, false, false
	}
	if a.minB != nil || a.maxB != nil || len(a.multPos) > 0 || len(a.patPos) > 0 {
		return nil, false, false
	}
	// assign maps chosen keys to the conjunction of inner obligations of
	// the diamonds assigned to them.
	return s.assignDiamonds(a, 0, map[string][]nf{})
}

// assignDiamonds backtracks over key choices for a.diaKey[i:].
func (s *solver) assignDiamonds(a *atoms, i int, assign map[string][]nf) (*jsonval.Value, bool, bool) {
	if i == len(a.diaKey) {
		return s.buildObject(a, assign)
	}
	d := a.diaKey[i]
	var candidates []string
	if d.isWord {
		candidates = []string{d.word}
	} else {
		candidates = d.re.Enumerate(s.caps.MaxKeysPerLanguage)
	}
	tainted := false
	for _, key := range candidates {
		prev, had := assign[key]
		assign[key] = append(append([]nf{}, prev...), d.inner)
		w, ok, t := s.assignDiamonds(a, i+1, assign)
		tainted = tainted || t
		if had {
			assign[key] = prev
		} else {
			delete(assign, key)
		}
		if ok {
			return w, true, false
		}
	}
	return nil, false, tainted
}

// buildObject completes an object witness from a diamond assignment:
// applies boxes, pads to MinCh, recursively solves children. A candidate
// of minimal size can collide with a negated ~(A) object document; the
// two ways out — padding with an extra fresh member, and steering one
// child value away from its counterpart in A — are tried in turn, so a
// collision never turns into a spurious UNSAT.
func (s *solver) buildObject(a *atoms, assign map[string][]nf) (*jsonval.Value, bool, bool) {
	keys := make([]string, 0, len(assign))
	for k := range assign {
		keys = append(keys, k)
	}
	sortStrings(keys)

	base := len(keys)
	if a.minCh > base {
		base = a.minCh
	}
	maxSize := base + len(a.eqNeg)
	if maxSize > a.maxCh {
		maxSize = a.maxCh
	}
	tainted := false
	for size := base; size <= maxSize; size++ {
		padded, padKeys, ok := s.padKeys(a, assign, keys, size)
		if !ok {
			break
		}
		w, ok, t := s.buildObjectWith(a, padded, padKeys, map[string][]nf{})
		tainted = tainted || t
		if ok {
			return w, true, false
		}
	}
	return nil, false, tainted
}

// padKeys extends a diamond assignment with fresh keys until the object
// has size members, preferring keys outside every box language
// (unconstrained children).
func (s *solver) padKeys(a *atoms, assign map[string][]nf, keys []string, size int) (map[string][]nf, []string, bool) {
	needed := size - len(keys)
	if needed <= 0 {
		return assign, keys, true
	}
	out := make(map[string][]nf, size)
	for k, v := range assign {
		out[k] = v
	}
	outKeys := append([]string{}, keys...)
	free := relang.Any()
	for _, b := range a.boxKey {
		free = free.Minus(b.re)
	}
	for _, cand := range free.Enumerate(needed + len(outKeys)) {
		if _, used := out[cand]; !used {
			out[cand] = nil
			outKeys = append(outKeys, cand)
			if needed--; needed == 0 {
				return out, outKeys, true
			}
		}
	}
	// Fall back to keys inside box languages; their children must
	// satisfy the boxes, which buildObjectWith applies.
	for _, cand := range relang.Any().Enumerate(needed + len(outKeys) + 4) {
		if _, used := out[cand]; !used {
			out[cand] = nil
			outKeys = append(outKeys, cand)
			if needed--; needed == 0 {
				return out, outKeys, true
			}
		}
	}
	return nil, nil, false
}

// buildObjectWith solves each member's child obligations and checks the
// result against the negated ~(·) documents. avoid carries per-key
// obligations accumulated while steering children away from colliding
// documents; each recursion pins one more key to differ, so the depth is
// bounded by len(a.eqNeg).
func (s *solver) buildObjectWith(a *atoms, assign map[string][]nf, keys []string, avoid map[string][]nf) (*jsonval.Value, bool, bool) {
	s.steps++
	if s.steps > s.caps.MaxSteps {
		s.exceeded = true
		return nil, false, true
	}
	tainted := false
	var members []jsonval.Member
	for _, key := range keys {
		obls := append([]nf{}, assign[key]...)
		obls = append(obls, avoid[key]...)
		for _, b := range a.boxKey {
			if b.isWord {
				if b.word == key {
					obls = append(obls, b.inner)
				}
			} else if b.re.Match(key) {
				obls = append(obls, b.inner)
			}
		}
		if len(obls) == 0 {
			obls = []nf{nfTrue{}}
		}
		child, ok, t := s.sat(obls)
		tainted = tainted || t
		if !ok {
			return nil, false, tainted
		}
		members = append(members, jsonval.Member{Key: key, Value: child})
	}
	obj, err := jsonval.Obj(members...)
	if err != nil {
		return nil, false, tainted
	}
	for _, d := range a.eqNeg {
		if !jsonval.Equal(obj, d) {
			continue
		}
		// Collision: some member's value must differ from its counterpart
		// in d (the member sets coincide, or Equal would have failed).
		// Backtrack over the choice of member.
		for _, key := range keys {
			dv, have := d.Member(key)
			if !have {
				continue
			}
			avoid[key] = append(avoid[key], nfTest{test: jsl.EqDoc{Doc: dv}, neg: true})
			w, ok, t := s.buildObjectWith(a, assign, keys, avoid)
			tainted = tainted || t
			avoid[key] = avoid[key][:len(avoid[key])-1]
			if ok {
				return w, true, false
			}
		}
		return nil, false, tainted
	}
	return obj, true, false
}

// solveArray synthesizes an array witness: index diamonds choose
// positions, boxes constrain ranges, Unique forces pairwise-distinct
// children (achieved by re-solving children with added ¬~(sibling)
// obligations).
func (s *solver) solveArray(a *atoms) (*jsonval.Value, bool, bool) {
	if len(a.diaKey) > 0 {
		return nil, false, false
	}
	if a.minB != nil || a.maxB != nil || len(a.multPos) > 0 || len(a.patPos) > 0 {
		return nil, false, false
	}
	return s.assignPositions(a, 0, map[int][]nf{})
}

func (s *solver) assignPositions(a *atoms, i int, assign map[int][]nf) (*jsonval.Value, bool, bool) {
	if i == len(a.diaIdx) {
		return s.buildArray(a, assign)
	}
	d := a.diaIdx[i]
	hi := d.hi
	if hi == jsl.Inf || hi > s.caps.MaxArrayLen-1 {
		hi = s.caps.MaxArrayLen - 1
	}
	tainted := false
	for p := d.lo; p <= hi; p++ {
		prev, had := assign[p]
		assign[p] = append(append([]nf{}, prev...), d.inner)
		w, ok, t := s.assignPositions(a, i+1, assign)
		tainted = tainted || t
		if had {
			assign[p] = prev
		} else {
			delete(assign, p)
		}
		if ok {
			return w, true, false
		}
	}
	return nil, false, tainted
}

func (s *solver) buildArray(a *atoms, assign map[int][]nf) (*jsonval.Value, bool, bool) {
	base := a.minCh
	for p := range assign {
		if p+1 > base {
			base = p + 1
		}
	}
	if a.uniqueNeg && base < 2 {
		base = 2
	}
	// A minimal-width candidate can collide with a negated ~(A) array
	// document; like buildObject, the builder escapes by widening the
	// array or by steering one element away from its counterpart in A
	// (buildArrayAt), so a collision never turns into a spurious UNSAT.
	limit := base + len(a.eqNeg)
	if limit > a.maxCh {
		limit = a.maxCh
	}
	if limit > s.caps.MaxArrayLen {
		limit = s.caps.MaxArrayLen
	}
	tainted := false
	for length := base; length <= limit; length++ {
		w, ok, t := s.buildArrayAt(a, assign, length, map[int][]nf{})
		tainted = tainted || t
		if ok {
			return w, true, false
		}
	}
	return nil, false, tainted
}

// buildArrayAt synthesizes an array of exactly the given width. avoid
// carries per-position obligations accumulated while steering elements
// away from colliding ~(·) documents; each recursion pins one more
// position to differ, so the depth is bounded by len(a.eqNeg).
func (s *solver) buildArrayAt(a *atoms, assign map[int][]nf, length int, avoid map[int][]nf) (*jsonval.Value, bool, bool) {
	s.steps++
	if s.steps > s.caps.MaxSteps {
		s.exceeded = true
		return nil, false, true
	}
	tainted := false
	elems := make([]*jsonval.Value, length)
	for p := 0; p < length; p++ {
		obls := append([]nf{}, assign[p]...)
		obls = append(obls, avoid[p]...)
		for _, b := range a.boxIdx {
			if p >= b.lo && (b.hi == jsl.Inf || p <= b.hi) {
				obls = append(obls, b.inner)
			}
		}
		if a.uniquePos {
			// Unique: exclude the values already chosen for earlier
			// positions, so the child solver produces a distinct value.
			for q := 0; q < p; q++ {
				obls = append(obls, nfTest{test: jsl.EqDoc{Doc: elems[q]}, neg: true})
			}
		}
		if a.uniqueNeg && p == 1 {
			// ¬Unique needs a duplicate pair; force position 1 to equal
			// position 0 (and still meet its own obligations).
			obls = append(obls, nfTest{test: jsl.EqDoc{Doc: elems[0]}})
		}
		if len(obls) == 0 {
			obls = []nf{nfTrue{}}
		}
		child, ok, t := s.sat(obls)
		tainted = tainted || t
		if !ok {
			return nil, false, tainted
		}
		elems[p] = child
	}
	arr := jsonval.Arr(elems...)
	for _, d := range a.eqNeg {
		if !jsonval.Equal(arr, d) {
			continue
		}
		// Collision: some position must differ from its counterpart in d
		// (the widths coincide, or Equal would have failed). Backtrack
		// over the choice of position.
		for p := 0; p < length; p++ {
			avoid[p] = append(avoid[p], nfTest{test: jsl.EqDoc{Doc: d.Elems()[p]}, neg: true})
			w, ok, t := s.buildArrayAt(a, assign, length, avoid)
			tainted = tainted || t
			avoid[p] = avoid[p][:len(avoid[p])-1]
			if ok {
				return w, true, false
			}
		}
		return nil, false, tainted
	}
	if a.uniquePos && !elemsUnique(arr) {
		return nil, false, tainted
	}
	if a.uniqueNeg && elemsUnique(arr) {
		return nil, false, tainted
	}
	return arr, true, false
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
