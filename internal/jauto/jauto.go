package jauto

import (
	"errors"
	"strings"

	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
)

// Automaton is a J-automaton compiled from a (recursive) JSL expression
// per Lemmas 4 and 5: its states are the closure of the expression (each
// NNF subformula in both polarities), its rules the formulas themselves.
type Automaton struct {
	rec     *jsl.Recursive
	defs    map[string]jsl.Formula
	closure map[string]bool
	caps    Caps
}

// ErrBudget is returned when the non-emptiness search exhausts its step
// budget without an exhaustive answer.
var ErrBudget = errors.New("jauto: search budget exhausted; result unknown (raise Caps.MaxSteps)")

// Compile builds the J-automaton for a recursive JSL expression,
// checking well-formedness (§5.3) first.
func Compile(r *jsl.Recursive) (*Automaton, error) {
	if err := r.WellFormed(); err != nil {
		return nil, err
	}
	a := &Automaton{
		rec:     r,
		defs:    map[string]jsl.Formula{},
		closure: map[string]bool{},
		caps:    DefaultCaps(),
	}
	for _, d := range r.Defs {
		a.defs[d.Name] = d.Body
	}
	for _, pol := range []bool{false, true} {
		a.collect(toNNF(r.Base, pol))
		for _, d := range r.Defs {
			a.collect(toNNF(d.Body, pol))
		}
	}
	return a, nil
}

// CompileFormula compiles a plain JSL formula (no definitions).
func CompileFormula(f jsl.Formula) (*Automaton, error) {
	return Compile(jsl.NonRecursive(f))
}

// SetCaps overrides the search bounds.
func (a *Automaton) SetCaps(c Caps) { a.caps = c }

func (a *Automaton) collect(f nf) {
	var sb strings.Builder
	render(f, &sb)
	key := sb.String()
	if a.closure[key] {
		return
	}
	a.closure[key] = true
	switch t := f.(type) {
	case nfAnd:
		a.collect(t.left)
		a.collect(t.right)
	case nfOr:
		a.collect(t.left)
		a.collect(t.right)
	case nfDia:
		a.collect(t.inner)
	case nfBox:
		a.collect(t.inner)
	}
}

// NumStates returns the number of states (closure formulas) of the
// automaton.
func (a *Automaton) NumStates() int { return len(a.closure) }

// Accepts reports whether the automaton accepts the tree. Acceptance
// coincides with J |= Δ; the run is computed bottom-up exactly as in the
// stratified evaluation of Proposition 9 (the run of a J-automaton
// augments each node with the states it satisfies, which is the same
// table).
func (a *Automaton) Accepts(t *jsontree.Tree) (bool, error) {
	return jsl.HoldsRecursive(t, a.rec)
}

// Nonempty decides language non-emptiness (Proposition 10): whether some
// JSON document is accepted. On success it returns a concrete witness
// document, independently re-verified against the source expression, so
// a true answer is always sound. A false answer is exhaustive within the
// configured Caps; if the step budget was exhausted first, ErrBudget is
// returned.
func (a *Automaton) Nonempty() (*jsonval.Value, bool, error) {
	s := newSolver(a.defs, a.caps)
	w, ok, _ := s.sat([]nf{toNNF(a.rec.Base, false)})
	if ok {
		holds, err := jsl.HoldsRecursive(jsontree.FromValue(w), a.rec)
		if err != nil {
			return nil, false, err
		}
		if !holds {
			return nil, false, errors.New("jauto: internal error: synthesized witness failed verification")
		}
		return w, true, nil
	}
	if s.exceeded {
		return nil, false, ErrBudget
	}
	return nil, false, nil
}

// SatisfiableJSL is the Proposition 7 / Proposition 10 entry point:
// satisfiability of a (recursive) JSL expression, with witness.
func SatisfiableJSL(r *jsl.Recursive) (*jsonval.Value, bool, error) {
	return SatisfiableJSLCaps(r, DefaultCaps())
}

// SatisfiableJSLCaps is SatisfiableJSL under explicit search bounds —
// the entry point for callers with a latency budget, like the engine's
// compile-time semantic pass. An exhausted budget is ErrBudget, never
// a guess.
func SatisfiableJSLCaps(r *jsl.Recursive, c Caps) (*jsonval.Value, bool, error) {
	a, err := Compile(r)
	if err != nil {
		return nil, false, err
	}
	a.SetCaps(c)
	return a.Nonempty()
}

// SatisfiableJSLFormula decides satisfiability of a plain JSL formula.
func SatisfiableJSLFormula(f jsl.Formula) (*jsonval.Value, bool, error) {
	return SatisfiableJSL(jsl.NonRecursive(f))
}

// SatisfiableJSLFormulaCaps is SatisfiableJSLFormula under explicit
// search bounds.
func SatisfiableJSLFormulaCaps(f jsl.Formula, c Caps) (*jsonval.Value, bool, error) {
	return SatisfiableJSLCaps(jsl.NonRecursive(f), c)
}
