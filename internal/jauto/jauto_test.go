package jauto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func satJSL(t *testing.T, src string) (*jsonval.Value, bool) {
	t.Helper()
	w, ok, err := SatisfiableJSL(jsl.MustParseRecursive(src))
	if err != nil {
		t.Fatalf("SatisfiableJSL(%s): %v", src, err)
	}
	return w, ok
}

func TestSatBasics(t *testing.T) {
	satCases := []string{
		`true`,
		`string`,
		`number && min(5) && max(10)`,
		`number && min(5) && multOf(7)`,
		`string && pattern("(01)+")`,
		`string && pattern("a+") && !pattern("aa+")`, // exactly "a"
		`object && minch(2)`,
		`array && minch(3) && unique`,
		`some("a", number) && some("b", string)`,
		`some(~"x.*", number && min(3))`,
		`all(~".*", number) && some("k", true)`,
		`some([0:], string) && some([2:2], number)`,
		`eq({"a":[1,2]})`,
		`!eq(5) && number && min(5) && max(6)`, // must pick 6
		`array && !unique && minch(2)`,
		`object && maxch(0)`,
		`some("a", some("a", some("a", number && min(7))))`,
	}
	for _, src := range satCases {
		w, ok := satJSL(t, src)
		if !ok {
			t.Errorf("%s should be satisfiable", src)
			continue
		}
		// The engine verifies witnesses internally; double-check here.
		tr := jsontree.FromValue(w)
		holds, err := jsl.HoldsRecursive(tr, jsl.MustParseRecursive(src))
		if err != nil || !holds {
			t.Errorf("witness %s does not satisfy %s (err=%v)", w, src, err)
		}
	}
	unsatCases := []string{
		`!true`,
		`string && number`,
		`string && pattern("a+") && pattern("b+")`,
		`number && min(10) && max(5)`,
		`number && max(10) && multOf(7) && min(8)`, // 7k in (8..10) impossible
		`object && minch(2) && maxch(1)`,
		`some("a", true) && string`,
		`some("a", true) && some([0:], true)`, // object and array at once
		`some("a", number && string)`,
		`eq(5) && string`,
		`eq(5) && !eq(5)`,
		`all(~".*", !true) && some("k", true)`,
		`array && unique && minch(2) && maxch(2) && all([0:], eq(1))`,
	}
	for _, src := range unsatCases {
		if w, ok := satJSL(t, src); ok {
			t.Errorf("%s should be unsatisfiable, got witness %s", src, w)
		}
	}
}

// TestEqDocModalConflict is a regression test: a positive eq(A)
// conjoined with a modality whose inner test contradicts A's child
// used to slip past witness synthesis (valueMeetsAtoms skipped
// positive eq atoms when evaluating nested node tests), surfacing as
// an internal "witness failed verification" error instead of UNSAT.
func TestEqDocModalConflict(t *testing.T) {
	unsat := []string{
		`all("k5", eq(0)) && eq({"k5":1})`,
		`some("k5", eq(0)) && eq({"k5":1})`,
		`all("k5", eq([])) && eq({"k5":0})`,
	}
	for _, src := range unsat {
		w, ok, err := SatisfiableJSLFormula(jsl.MustParse(src))
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if ok {
			t.Errorf("%s should be unsatisfiable, got witness %s", src, w)
		}
	}
	// The consistent counterparts must stay satisfiable.
	for _, src := range []string{
		`all("k5", eq(0)) && eq({"k5":0})`,
		`some("k5", eq([])) && eq({"k5":[]})`,
	} {
		if _, ok := satJSL(t, src); !ok {
			t.Errorf("%s should be satisfiable", src)
		}
	}
}

// TestEqNegContainerRetry: a minimal container witness that collides
// with a negated ~(A) document must be escaped by widening the
// container or steering a child away from A — not reported UNSAT.
// (Found by the metamorphic containment harness: "unique && array"
// was decided equivalent to "unique && array && eq([])".)
func TestEqNegContainerRetry(t *testing.T) {
	satCases := []string{
		`array && !eq([])`,
		`(unique && array) && !eq([])`,
		`array && !eq([]) && !eq([0])`,
		`array && minch(1) && maxch(1) && !eq([0])`,
		`array && !unique && !eq([0,0])`,
		`object && !eq({})`,
		`object && !eq({}) && !eq({"k0":0})`,
		`some("a", eq(0)) && !eq({"a":0})`,
	}
	for _, src := range satCases {
		w, ok := satJSL(t, src)
		if !ok {
			t.Errorf("%s should be satisfiable", src)
			continue
		}
		holds, err := jsl.HoldsRecursive(jsontree.FromValue(w), jsl.MustParseRecursive(src))
		if err != nil || !holds {
			t.Errorf("witness %s does not satisfy %s (err=%v)", w, src, err)
		}
	}
	// Controls: when every container the bounds allow is forbidden, the
	// query really is unsatisfiable and must stay that way.
	unsatCases := []string{
		`array && maxch(0) && !eq([])`,
		`object && maxch(0) && !eq({})`,
		`array && maxch(1) && all([0:], eq(7)) && !eq([]) && !eq([7])`,
		`some("a", eq(0)) && maxch(1) && !eq({"a":0})`,
	}
	for _, src := range unsatCases {
		w, ok, err := SatisfiableJSL(jsl.MustParseRecursive(src))
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if ok {
			t.Errorf("%s should be unsatisfiable, got witness %s", src, w)
		}
	}
}

// TestProposition2Examples: the observation after Proposition 2 — the
// positive formula X_a[X_1] ∧ X_a[X_b] is unsatisfiable because the
// value under key a cannot be both an array and an object.
func TestProposition2Examples(t *testing.T) {
	u := jnl.MustParse(`[/a <[/1]>] && [/a <[/b]>]`)
	if _, ok, err := SatisfiableJNL(u); err != nil || ok {
		t.Errorf("key-uniqueness conflict must be UNSAT (ok=%v err=%v)", ok, err)
	}
	// Without the conflict each conjunct alone is satisfiable.
	for _, src := range []string{`[/a <[/1]>]`, `[/a <[/b]>]`} {
		w, ok, err := SatisfiableJNL(jnl.MustParse(src))
		if err != nil || !ok {
			t.Errorf("%s should be SAT (err=%v)", src, err)
			continue
		}
		tr := jsontree.FromValue(w)
		if !jnl.Holds(tr, jnl.MustParse(src), tr.Root()) {
			t.Errorf("witness %s does not satisfy %s", w, src)
		}
	}
}

func TestSatJNLWithStar(t *testing.T) {
	cases := []struct {
		src string
		sat bool
	}{
		{`[(/a)* <eq(eps, 5)>]`, true},
		{`[/a (/a)* <eq(eps, 5)>]`, true},
		{`[(/~".*")* <eq(eps, "x")>]`, true},
		{`[(/a)*] && !true`, false},
		{`[(/a /b)* /a <eq(eps, 1)>]`, true},
	}
	for _, tc := range cases {
		w, ok, err := SatisfiableJNL(jnl.MustParse(tc.src))
		if err != nil {
			t.Errorf("SatisfiableJNL(%s): %v", tc.src, err)
			continue
		}
		if ok != tc.sat {
			t.Errorf("%s: sat=%v want %v", tc.src, ok, tc.sat)
			continue
		}
		if ok {
			tr := jsontree.FromValue(w)
			if !jnl.Holds(tr, jnl.MustParse(tc.src), tr.Root()) {
				t.Errorf("witness %s does not satisfy %s", w, tc.src)
			}
		}
	}
}

func TestSatEQPathsRejected(t *testing.T) {
	if _, _, err := SatisfiableJNL(jnl.MustParse(`eq(/a, /b)`)); err == nil {
		t.Error("EQ(α,β) satisfiability must be rejected (Proposition 4)")
	}
}

// TestInfiniteDescentUnsat: γ = ◇_a γ demands an infinite path, which no
// finite tree provides; the cycle cut must report UNSAT.
func TestInfiniteDescentUnsat(t *testing.T) {
	if w, ok := satJSL(t, `def g = some("a", g) ; g`); ok {
		t.Errorf("infinite-descent expression should be UNSAT, got %s", w)
	}
	// The companion with an escape hatch is satisfiable.
	if _, ok := satJSL(t, `def g = number || some("a", g) ; g`); !ok {
		t.Error("escape-hatch recursion should be SAT")
	}
}

func TestSatRecursiveExamples(t *testing.T) {
	// Example 2: even-length paths; {} is the smallest witness.
	w, ok := satJSL(t, `
		def g1 = all(~".*", g2) ;
		def g2 = some(~".*", true) && all(~".*", g1) ;
		g1`)
	if !ok {
		t.Fatal("Example 2 expression should be satisfiable")
	}
	tr := jsontree.FromValue(w)
	if h := tr.Height(tr.Root()); h%2 != 0 {
		t.Errorf("witness height %d is odd: %s", h, w)
	}
	// Example 5: complete binary trees with equal siblings.
	w, ok = satJSL(t, `
		def g = !some([0:], true) || (minch(2) && maxch(2) && !unique && all([0:1], g)) ;
		array && g`)
	if !ok {
		t.Fatal("Example 5 expression should be satisfiable")
	}
	if !w.IsArray() {
		t.Errorf("witness should be an array, got %s", w)
	}
	// Forcing at least one level: two equal children.
	w, ok = satJSL(t, `
		def g = !some([0:], true) || (minch(2) && maxch(2) && !unique && all([0:1], g)) ;
		array && minch(2) && g`)
	if !ok {
		t.Fatal("deeper Example 5 expression should be satisfiable")
	}
	if w.Len() != 2 {
		t.Errorf("witness should have exactly 2 children: %s", w)
	}
	e0, _ := w.Elem(0)
	e1, _ := w.Elem(1)
	if !jsonval.Equal(e0, e1) {
		t.Errorf("¬Unique forces equal siblings, got %s", w)
	}
}

func TestCompileAndAccepts(t *testing.T) {
	r := jsl.MustParseRecursive(`
		def g = number || some("a", g) ;
		g`)
	a, err := Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 5 {
		t.Errorf("closure unexpectedly small: %d states", a.NumStates())
	}
	for doc, want := range map[string]bool{
		`5`:             true,
		`{"a":5}`:       true,
		`{"a":{"a":7}}`: true,
		`"x"`:           false,
		`{"b":5}`:       false,
		`{"a":"x"}`:     false,
	} {
		tr := jsontree.MustParse(doc)
		got, err := a.Accepts(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Accepts(%s) = %v, want %v", doc, got, want)
		}
	}
}

func TestIllFormedRejected(t *testing.T) {
	bad := &jsl.Recursive{
		Defs: []jsl.Definition{{Name: "g", Body: jsl.Not{Inner: jsl.Ref{Name: "g"}}}},
		Base: jsl.Ref{Name: "g"},
	}
	if _, err := Compile(bad); err == nil {
		t.Error("ill-formed recursion must be rejected")
	}
}

// Random-formula generators for the completeness/soundness property
// tests. Kept shallow so the reference check (random documents) has a
// reasonable chance of hitting satisfying documents.
func randSatFormula(r *rand.Rand, depth int) jsl.Formula {
	if depth == 0 {
		switch r.Intn(8) {
		case 0:
			return jsl.True{}
		case 1:
			return jsl.IsStr{}
		case 2:
			return jsl.IsInt{}
		case 3:
			return jsl.Min{I: uint64(r.Intn(4))}
		case 4:
			return jsl.Pattern{Re: relang.MustCompile("[ab]")}
		case 5:
			return jsl.MinCh{K: r.Intn(2)}
		case 6:
			return jsl.EqDoc{Doc: jsonval.Num(uint64(r.Intn(3)))}
		default:
			return jsl.MaxCh{K: r.Intn(3)}
		}
	}
	switch r.Intn(7) {
	case 0:
		return jsl.Not{Inner: randSatFormula(r, depth-1)}
	case 1:
		return jsl.And{Left: randSatFormula(r, depth-1), Right: randSatFormula(r, depth-1)}
	case 2:
		return jsl.Or{Left: randSatFormula(r, depth-1), Right: randSatFormula(r, depth-1)}
	case 3:
		return jsl.DiaWord(string(rune('a'+r.Intn(2))), randSatFormula(r, depth-1))
	case 4:
		return jsl.BoxWord(string(rune('a'+r.Intn(2))), randSatFormula(r, depth-1))
	case 5:
		return jsl.DiamondIdx{Lo: 0, Hi: r.Intn(2), Inner: randSatFormula(r, depth-1)}
	default:
		return jsl.BoxIdx{Lo: 0, Hi: jsl.Inf, Inner: randSatFormula(r, depth-1)}
	}
}

func randWitnessCandidate(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(4)))
		}
		return jsonval.Str(string(rune('a' + r.Intn(2))))
	}
	n := r.Intn(3)
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randWitnessCandidate(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := string(rune('a' + r.Intn(2)))
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: randWitnessCandidate(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

type satCase struct {
	f    jsl.Formula
	docs []*jsonval.Value
}

func (satCase) Generate(r *rand.Rand, size int) reflect.Value {
	docs := make([]*jsonval.Value, 12)
	for i := range docs {
		docs[i] = randWitnessCandidate(r, 2)
	}
	return reflect.ValueOf(satCase{randSatFormula(r, 2), docs})
}

// TestQuickSatSoundAndComplete: (soundness) a SAT answer's witness
// satisfies the formula; (completeness spot check) if any of a batch of
// random documents satisfies the formula, the solver must answer SAT.
func TestQuickSatSoundAndComplete(t *testing.T) {
	f := func(c satCase) bool {
		w, ok, err := SatisfiableJSLFormula(c.f)
		if err != nil {
			t.Logf("solver error on %s: %v", jsl.String(c.f), err)
			return false
		}
		if ok {
			tr := jsontree.FromValue(w)
			holds, err := jsl.Holds(tr, c.f)
			if err != nil || !holds {
				t.Logf("unsound witness %s for %s", w, jsl.String(c.f))
				return false
			}
			return true
		}
		// UNSAT: no random document may satisfy the formula.
		for _, doc := range c.docs {
			tr := jsontree.FromValue(doc)
			holds, err := jsl.Holds(tr, c.f)
			if err == nil && holds {
				t.Logf("solver said UNSAT for %s but %s satisfies it", jsl.String(c.f), doc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
