package jauto

import (
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonval"
)

// SatisfiableJNL decides satisfiability of a unary JNL formula,
// realizing Propositions 2 and 5: the formula is translated into a
// recursive JSL expression (Theorem 2 for the star-free part; star
// subpaths become guarded definitions, one per state of the path's
// Thompson program) and satisfiability is decided on the compiled
// J-automaton.
//
// Formulas containing EQ(α,β) are rejected: their satisfiability is
// undecidable (Proposition 4).
func SatisfiableJNL(u jnl.Unary) (*jsonval.Value, bool, error) {
	return SatisfiableJNLCaps(u, DefaultCaps())
}

// SatisfiableJNLCaps is SatisfiableJNL under explicit search bounds;
// see SatisfiableJSLCaps.
func SatisfiableJNLCaps(u jnl.Unary, c Caps) (*jsonval.Value, bool, error) {
	r, err := JNLToRecursiveJSL(u)
	if err != nil {
		return nil, false, err
	}
	return SatisfiableJSLCaps(r, c)
}

// JNLToRecursiveJSL translates a unary JNL formula (possibly with Kleene
// stars, but without EQ(α,β)) into an equivalent recursive JSL
// expression. Star-free paths translate in continuation-passing style as
// in Theorem 2; each star introduces definitions γ_q, one per program
// state, with γ_q guarded by the modal step of each outgoing axis.
func JNLToRecursiveJSL(u jnl.Unary) (*jsl.Recursive, error) {
	c := &jnlConverter{}
	base, err := c.unary(u)
	if err != nil {
		return nil, err
	}
	r := &jsl.Recursive{Defs: c.defs, Base: base}
	if err := r.WellFormed(); err != nil {
		// Star bodies whose loops cross only tests (no axis) produce
		// unguarded definition cycles; simplifyStars removes the common
		// cases, anything else is reported to the caller.
		return nil, fmt.Errorf("jauto: path expression produced ill-formed recursion (%v); rewrite test-only loops", err)
	}
	return r, nil
}

type jnlConverter struct {
	defs    []jsl.Definition
	counter int
}

func (c *jnlConverter) unary(u jnl.Unary) (jsl.Formula, error) {
	switch t := u.(type) {
	case jnl.True:
		return jsl.True{}, nil
	case jnl.Not:
		inner, err := c.unary(t.Inner)
		if err != nil {
			return nil, err
		}
		return jsl.Not{Inner: inner}, nil
	case jnl.And:
		l, err := c.unary(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.unary(t.Right)
		if err != nil {
			return nil, err
		}
		return jsl.And{Left: l, Right: r}, nil
	case jnl.Or:
		l, err := c.unary(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.unary(t.Right)
		if err != nil {
			return nil, err
		}
		return jsl.Or{Left: l, Right: r}, nil
	case jnl.Exists:
		return c.path(simplifyStars(t.Path), jsl.True{})
	case jnl.EQDoc:
		return c.path(simplifyStars(t.Path), jsl.EqDoc{Doc: t.Doc})
	case jnl.EQPaths:
		return nil, fmt.Errorf("jauto: satisfiability with EQ(α,β) is undecidable (Proposition 4)")
	default:
		return nil, fmt.Errorf("jauto: unknown JNL unary %T", u)
	}
}

// path translates binary b with continuation k.
func (c *jnlConverter) path(b jnl.Binary, k jsl.Formula) (jsl.Formula, error) {
	switch t := b.(type) {
	case jnl.Epsilon:
		return k, nil
	case jnl.KeyAxis:
		return jsl.DiaWord(t.Word, k), nil
	case jnl.RegexAxis:
		return jsl.DiaRe(t.Re, k), nil
	case jnl.IndexAxis:
		if t.Index < 0 {
			return nil, fmt.Errorf("jauto: negative array index %d is not supported in satisfiability (no JSL counterpart)", t.Index)
		}
		return jsl.DiaAt(t.Index, k), nil
	case jnl.RangeAxis:
		hi := t.Hi
		if hi == jnl.Inf {
			hi = jsl.Inf
		}
		return jsl.DiamondIdx{Lo: t.Lo, Hi: hi, Inner: k}, nil
	case jnl.Test:
		inner, err := c.unary(t.Inner)
		if err != nil {
			return nil, err
		}
		return jsl.And{Left: inner, Right: k}, nil
	case jnl.Concat:
		right, err := c.path(t.Right, k)
		if err != nil {
			return nil, err
		}
		return c.path(t.Left, right)
	case jnl.Star:
		return c.star(t, k)
	case jnl.Alt:
		l, err := c.path(t.Left, k)
		if err != nil {
			return nil, err
		}
		r, err := c.path(t.Right, k)
		if err != nil {
			return nil, err
		}
		return jsl.Or{Left: l, Right: r}, nil
	default:
		return nil, fmt.Errorf("jauto: unknown JNL binary %T", b)
	}
}

// star translates (α)* with continuation k into a guarded definition:
//
//	γ = k ∨ ⟨one α step reaching γ⟩
//
// where "one α step" is the continuation-passing translation of α with
// continuation γ. Every loop through γ crosses at least one modal
// operator as long as α contains an axis; axis-free stars are removed by
// simplifyStars before reaching here.
func (c *jnlConverter) star(s jnl.Star, k jsl.Formula) (jsl.Formula, error) {
	c.counter++
	name := fmt.Sprintf("star_%d", c.counter)
	step, err := c.path(s.Inner, jsl.Ref{Name: name})
	if err != nil {
		return nil, err
	}
	c.defs = append(c.defs, jsl.Definition{
		Name: name,
		Body: jsl.Or{Left: k, Right: step},
	})
	return jsl.Ref{Name: name}, nil
}

// simplifyStars rewrites axis-free stars to ε (their relations are
// sub-identities, so the reflexive-transitive closure is the identity)
// and flattens directly nested stars ((α*)* = α*), recursively.
func simplifyStars(b jnl.Binary) jnl.Binary {
	switch t := b.(type) {
	case jnl.Concat:
		return jnl.Concat{Left: simplifyStars(t.Left), Right: simplifyStars(t.Right)}
	case jnl.Alt:
		return jnl.Alt{Left: simplifyStars(t.Left), Right: simplifyStars(t.Right)}
	case jnl.Test:
		return t
	case jnl.Star:
		inner := simplifyStars(t.Inner)
		if !hasAxis(inner) {
			return jnl.Epsilon{}
		}
		if is, ok := inner.(jnl.Star); ok {
			return is
		}
		return jnl.Star{Inner: inner}
	default:
		return b
	}
}

func hasAxis(b jnl.Binary) bool {
	switch t := b.(type) {
	case jnl.KeyAxis, jnl.IndexAxis, jnl.RegexAxis, jnl.RangeAxis:
		return true
	case jnl.Concat:
		return hasAxis(t.Left) || hasAxis(t.Right)
	case jnl.Alt:
		return hasAxis(t.Left) || hasAxis(t.Right)
	case jnl.Star:
		return hasAxis(t.Inner)
	default:
		return false
	}
}
