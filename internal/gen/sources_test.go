package gen_test

import (
	"math/rand"
	"testing"

	"jsonlogic/internal/gen"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsonpath"
	"jsonlogic/internal/mongoq"
)

// Every random source must be accepted by its front end's parser — the
// differential harness in internal/engine treats a parse failure as a
// generator bug, so the contract is pinned here close to the generators.
func TestRandomSourcesParse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		usrc := gen.RandomJNLSource(r, 3)
		if _, err := jnl.Parse(usrc); err != nil {
			t.Fatalf("JNL generator emitted invalid source %q: %v", usrc, err)
		}
		bsrc := gen.RandomJNLPathSource(r, 2)
		if _, err := jnl.ParseBinary(bsrc); err != nil {
			t.Fatalf("JNL path generator emitted invalid source %q: %v", bsrc, err)
		}
		src := gen.RandomJSLSource(r, 3)
		if _, err := jsl.Parse(src); err != nil {
			t.Fatalf("JSL generator emitted invalid source %q: %v", src, err)
		}
		rsrc := gen.RandomRecursiveJSLSource(r, 2)
		rec, err := jsl.ParseRecursive(rsrc)
		if err != nil {
			t.Fatalf("recursive JSL generator emitted invalid source %q: %v", rsrc, err)
		}
		if err := rec.WellFormed(); err != nil {
			t.Fatalf("recursive JSL generator emitted ill-formed source %q: %v", rsrc, err)
		}
		psrc := gen.RandomJSONPathSource(r)
		if _, err := jsonpath.Compile(psrc); err != nil {
			t.Fatalf("JSONPath generator emitted invalid source %q: %v", psrc, err)
		}
		msrc := gen.RandomMongoSource(r, 2)
		if _, err := mongoq.Parse(msrc); err != nil {
			t.Fatalf("mongo generator emitted invalid source %q: %v", msrc, err)
		}
	}
}
