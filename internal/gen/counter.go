package gen

import (
	"fmt"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func mustRe(pattern string) *relang.Regex { return relang.MustCompile(pattern) }

func anyKey() *relang.Regex { return relang.Any() }

// ---- Proposition 4: two-counter machines → recursive JNL with EQ ----
//
// Satisfiability of non-deterministic recursive JNL with EQ(α,β) is
// undecidable; the proof reduces from the halting problem of two-counter
// (Minsky) machines. An undecidable problem cannot be "run", so the
// reproduction is evaluation-side: we build the formula of the proof and
// the JSON encoding of a machine run, and check that the formula holds
// exactly on encodings of accepting runs.

// CounterOp is an operation of a two-counter machine transition.
type CounterOp uint8

// Counter machine operations on a designated counter.
const (
	// OpIncr increments the counter and moves to Next.
	OpIncr CounterOp = iota
	// OpDecr decrements the counter and moves to Next.
	OpDecr
	// OpIfZero moves to Next when the counter is zero and to Else
	// otherwise (without changing the counters).
	OpIfZero
)

// CounterTransition is the transition of one machine state.
type CounterTransition struct {
	Op      CounterOp
	Counter int // 0 or 1
	Next    string
	Else    string // only for OpIfZero
}

// CounterMachine is a deterministic two-counter machine.
type CounterMachine struct {
	Start string
	Final string
	Delta map[string]CounterTransition
}

// Run executes the machine from (Start, 0, 0) for at most maxSteps and
// returns the visited configurations (state, c0, c1) including the
// initial one, plus whether the final state was reached.
func (m CounterMachine) Run(maxSteps int) (states []string, c0s, c1s []int, halted bool) {
	state, c0, c1 := m.Start, 0, 0
	for step := 0; step <= maxSteps; step++ {
		states = append(states, state)
		c0s = append(c0s, c0)
		c1s = append(c1s, c1)
		if state == m.Final {
			return states, c0s, c1s, true
		}
		tr, ok := m.Delta[state]
		if !ok {
			return states, c0s, c1s, false
		}
		c := &c0
		if tr.Counter == 1 {
			c = &c1
		}
		switch tr.Op {
		case OpIncr:
			*c++
			state = tr.Next
		case OpDecr:
			if *c == 0 {
				return states, c0s, c1s, false
			}
			*c--
			state = tr.Next
		case OpIfZero:
			if *c == 0 {
				state = tr.Next
			} else {
				state = tr.Else
			}
		}
	}
	return states, c0s, c1s, false
}

// EncodeRun encodes a run as the JSON chain of the proof: each
// configuration is an object with keys "state" (a string), "c0" and "c1"
// (unary-counter chains of key "a" ending in the string "0"), and "next"
// (the following configuration; the final configuration omits it).
func EncodeRun(states []string, c0s, c1s []int) *jsonval.Value {
	encodeCounter := func(n int) *jsonval.Value {
		v := jsonval.Str("0")
		for i := 0; i < n; i++ {
			v = jsonval.MustObj(jsonval.Member{Key: "a", Value: v})
		}
		return v
	}
	var doc *jsonval.Value
	for i := len(states) - 1; i >= 0; i-- {
		members := []jsonval.Member{
			{Key: "state", Value: jsonval.Str(states[i])},
			{Key: "c0", Value: encodeCounter(c0s[i])},
			{Key: "c1", Value: encodeCounter(c1s[i])},
		}
		if doc != nil {
			members = append(members, jsonval.Member{Key: "next", Value: doc})
		}
		doc = jsonval.MustObj(members...)
	}
	return doc
}

// HaltingFormula builds the Proposition 4 formula for the machine: the
// composition Q_init ∘ Q_trans ∘ Q_final over the configuration chain.
// It holds at the root of a document iff the document encodes an
// accepting run of the machine (initial configuration with empty
// counters, consecutive configurations related by δ, final state
// reached). The counters are compared between configurations with
// EQ(α,β), the feature responsible for undecidability.
func (m CounterMachine) HaltingFormula() jnl.Unary {
	counterKey := func(c int) string { return fmt.Sprintf("c%d", c) }
	// eqCounter(path1, path2): the two counter subtrees are equal.
	eqC := func(a, b jnl.Binary) jnl.Unary { return jnl.EQPaths{Left: a, Right: b} }
	key := func(w string) jnl.Binary { return jnl.KeyAxis{Word: w} }
	seq := jnl.Seq

	// stateIs(path, q): the state under path is the string q.
	stateIs := func(prefix jnl.Binary, q string) jnl.Unary {
		return jnl.EQDoc{Path: seq(prefix, key("state")), Doc: jsonval.Str(q)}
	}

	// Q_init: the root configuration has empty counters and the start
	// state.
	qInit := jnl.AndAll(
		jnl.EQDoc{Path: key("c0"), Doc: jsonval.Str("0")},
		jnl.EQDoc{Path: key("c1"), Doc: jsonval.Str("0")},
		stateIs(jnl.Epsilon{}, m.Start),
	)

	// Per-state transition condition, checked at a configuration node
	// that has a successor.
	var transParts []jnl.Unary
	for q, tr := range m.Delta {
		ck := counterKey(tr.Counter)
		ok := counterKey(1 - tr.Counter)
		var cond jnl.Unary
		switch tr.Op {
		case OpIncr:
			// next.c = {"a": c}: the next counter with one "a" peeled
			// equals the current counter.
			cond = jnl.AndAll(
				eqC(key(ck), seq(key("next"), key(ck), key("a"))),
				stateIs(key("next"), tr.Next),
			)
		case OpDecr:
			cond = jnl.AndAll(
				eqC(seq(key(ck), key("a")), seq(key("next"), key(ck))),
				stateIs(key("next"), tr.Next),
			)
		case OpIfZero:
			zero := jnl.AndAll(
				jnl.EQDoc{Path: key(ck), Doc: jsonval.Str("0")},
				stateIs(key("next"), tr.Next),
				eqC(key(ck), seq(key("next"), key(ck))),
			)
			nonzero := jnl.AndAll(
				jnl.Exists{Path: seq(key(ck), key("a"))},
				stateIs(key("next"), tr.Else),
				eqC(key(ck), seq(key("next"), key(ck))),
			)
			cond = jnl.Or{Left: zero, Right: nonzero}
		}
		// The untouched counter is copied.
		cond = jnl.And{Left: cond, Right: eqC(key(ok), seq(key("next"), key(ok)))}
		transParts = append(transParts, jnl.And{Left: stateIs(jnl.Epsilon{}, q), Right: cond})
	}
	// Every configuration with a successor obeys some transition:
	// along the whole chain, ¬∃ next ∨ (one of the transitions fires).
	chainOK := jnl.Or{
		Left:  jnl.Not{Inner: jnl.Exists{Path: key("next")}},
		Right: jnl.OrAll(transParts...),
	}
	qTrans := jnl.Not{Inner: jnl.Exists{Path: seq(
		jnl.Star{Inner: key("next")},
		jnl.Test{Inner: jnl.Not{Inner: chainOK}},
	)}}

	// Q_final: some configuration reaches the final state.
	qFinal := jnl.Exists{Path: seq(
		jnl.Star{Inner: key("next")},
		jnl.Test{Inner: stateIs(jnl.Epsilon{}, m.Final)},
	)}

	return jnl.AndAll(qInit, qTrans, qFinal)
}
