// Package gen provides the workload generators behind the experiment
// harness: parameterized random JSON documents, and the reductions used
// in the paper's hardness proofs — 3SAT to deterministic JNL
// (Proposition 2), QBF to JSL (Proposition 7), boolean circuits to
// recursive JSL (Proposition 9) and two-counter machines to recursive
// JNL with EQ(α,β) (Proposition 4). Each reduction ships with a
// brute-force reference decision procedure so tests can confirm the
// reduction preserves (un)satisfiability.
package gen

import (
	"fmt"
	"math/rand"

	"jsonlogic/internal/jsonval"
)

// DocOptions parameterize random document generation.
type DocOptions struct {
	// Fanout is the number of children per container node.
	Fanout int
	// Depth is the nesting depth.
	Depth int
	// Keys is the pool size for object keys (keys are k0, k1, …).
	Keys int
	// ArrayBias in [0,100]: percentage of containers that are arrays.
	ArrayBias int
	// ValueRange bounds the numbers stored at leaves.
	ValueRange int
}

// DefaultDocOptions is a balanced mix of objects, arrays and scalars.
func DefaultDocOptions() DocOptions {
	return DocOptions{Fanout: 4, Depth: 5, Keys: 12, ArrayBias: 40, ValueRange: 100}
}

// Document generates a pseudorandom document with the given options.
func Document(r *rand.Rand, o DocOptions) *jsonval.Value {
	return docRec(r, o, o.Depth)
}

func docRec(r *rand.Rand, o DocOptions, depth int) *jsonval.Value {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(o.ValueRange)))
		}
		return jsonval.Str(fmt.Sprintf("s%d", r.Intn(o.ValueRange)))
	}
	if r.Intn(100) < o.ArrayBias {
		elems := make([]*jsonval.Value, o.Fanout)
		for i := range elems {
			elems[i] = docRec(r, o, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	members := make([]jsonval.Member, 0, o.Fanout)
	seen := map[string]bool{}
	for i := 0; i < o.Fanout; i++ {
		k := fmt.Sprintf("k%d", r.Intn(o.Keys))
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: docRec(r, o, depth-1)})
	}
	return jsonval.MustObj(members...)
}

// SizedDocument generates a document with approximately n nodes: a
// balanced object tree with fanout 8, whose leaf layer mixes strings and
// numbers deterministically from the seed.
func SizedDocument(seed int64, n int) *jsonval.Value {
	r := rand.New(rand.NewSource(seed))
	const fanout = 8
	depth := 1
	total := 1
	for total < n {
		total = total*fanout + 1
		depth++
	}
	o := DocOptions{Fanout: fanout, Depth: depth, Keys: fanout * 2, ArrayBias: 30, ValueRange: 64}
	doc := Document(r, o)
	for doc.Size() < n/2 {
		o.Depth++
		doc = Document(r, o)
	}
	return doc
}

// WideDocument generates an object with n members holding numbers; the
// extreme-fanout shape used by evaluation benchmarks.
func WideDocument(n int) *jsonval.Value {
	members := make([]jsonval.Member, n)
	for i := range members {
		members[i] = jsonval.Member{Key: fmt.Sprintf("k%06d", i), Value: jsonval.Num(uint64(i))}
	}
	return jsonval.MustObj(members...)
}

// DeepDocument generates a chain of n nested objects (height n); the
// extreme-depth shape used by evaluation and recursion benchmarks.
func DeepDocument(n int) *jsonval.Value {
	doc := jsonval.Num(0)
	for i := 0; i < n; i++ {
		doc = jsonval.MustObj(jsonval.Member{Key: "next", Value: doc})
	}
	return doc
}

// ArrayDocument generates an array of n elements drawn cyclically from
// k distinct values; duplicates appear whenever n > k. Used by the
// Unique benchmarks of Proposition 6.
func ArrayDocument(n, k int) *jsonval.Value {
	elems := make([]*jsonval.Value, n)
	for i := range elems {
		elems[i] = jsonval.MustObj(
			jsonval.Member{Key: "id", Value: jsonval.Num(uint64(i % k))},
			jsonval.Member{Key: "tag", Value: jsonval.Str(fmt.Sprintf("t%d", i%k))},
		)
	}
	return jsonval.Arr(elems...)
}
