package gen

import (
	"math/rand"
	"testing"

	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
)

func TestDocumentGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	doc := Document(r, DefaultDocOptions())
	if doc.Size() < 2 {
		t.Error("random document too small")
	}
	if w := WideDocument(100); w.Len() != 100 {
		t.Errorf("WideDocument len = %d", w.Len())
	}
	if d := DeepDocument(50); d.Height() != 50 {
		t.Errorf("DeepDocument height = %d", d.Height())
	}
	if s := SizedDocument(7, 5000); s.Size() < 2500 {
		t.Errorf("SizedDocument too small: %d", s.Size())
	}
	arr := ArrayDocument(10, 5)
	if arr.Len() != 10 {
		t.Errorf("ArrayDocument len = %d", arr.Len())
	}
	tr := jsontree.FromValue(arr)
	if tr.UniqueChildren(tr.Root()) {
		t.Error("ArrayDocument(10,5) must contain duplicates")
	}
	arr2 := ArrayDocument(5, 5)
	tr2 := jsontree.FromValue(arr2)
	if !tr2.UniqueChildren(tr2.Root()) {
		t.Error("ArrayDocument(5,5) must be duplicate-free")
	}
}

// TestP2Reduction validates the Proposition 2 reduction: the JNL formula
// is satisfiable iff the 3SAT instance is, across random instances.
func TestP2Reduction(t *testing.T) {
	// The reduction target is NP-hard (that is the point of Prop 2), and
	// the generic non-emptiness search is exponential in the number of
	// disjunctions, so the differential check sticks to instance sizes
	// the solver finishes quickly; BenchmarkP2Sat3SAT sweeps larger ones.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		vars := 3 + r.Intn(2)
		clauses := 2 + r.Intn(6)
		inst := RandomThreeSAT(r, vars, clauses)
		want := inst.BruteForceSatisfiable()
		formula := inst.ToJNL()
		c := jnl.Classify(formula)
		if !c.Deterministic || c.HasNegation || c.HasEQPaths {
			t.Fatalf("reduction must be positive deterministic JNL, got %+v", c)
		}
		w, got, err := jauto.SatisfiableJNL(formula)
		if err != nil {
			t.Fatalf("SatisfiableJNL: %v", err)
		}
		if got != want {
			t.Errorf("instance %d: solver %v, brute force %v", trial, got, want)
		}
		if got {
			tr := jsontree.FromValue(w)
			if !jnl.Holds(tr, formula, tr.Root()) {
				t.Errorf("witness does not satisfy the reduction formula")
			}
		}
	}
}

// TestP7Reduction validates the Proposition 7 reduction: the JSL formula
// is satisfiable iff the QBF is true, across random instances.
func TestP7Reduction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		vars := 2 + r.Intn(3)
		clauses := 1 + r.Intn(4)
		q := RandomQBF(r, vars, clauses)
		want := q.BruteForceTrue()
		formula := q.ToJSL()
		w, got, err := jauto.SatisfiableJSLFormula(formula)
		if err != nil {
			t.Fatalf("SatisfiableJSLFormula: %v", err)
		}
		if got != want {
			t.Errorf("QBF trial %d (exists=%v clauses=%v): solver %v, brute force %v",
				trial, q.Exists, q.Clauses, got, want)
		}
		if got {
			tr := jsontree.FromValue(w)
			holds, err := jsl.Holds(tr, formula)
			if err != nil || !holds {
				t.Errorf("witness does not satisfy the QBF reduction")
			}
		}
	}
}

// TestP9CircuitReduction validates the Proposition 9 reduction: the
// recursive JSL expression evaluates the circuit.
func TestP9CircuitReduction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		inputs := 2 + r.Intn(4)
		c := RandomCircuit(r, inputs, 3+r.Intn(8))
		expr := c.ToRecursiveJSL()
		if err := expr.WellFormed(); err != nil {
			t.Fatalf("circuit expression ill-formed: %v", err)
		}
		assignment := make([]bool, inputs)
		for mask := 0; mask < 1<<inputs; mask++ {
			for i := range assignment {
				assignment[i] = mask>>i&1 == 1
			}
			want := c.Eval(assignment)
			tr := jsontree.MustParse(c.InputDocument(assignment))
			got, err := jsl.HoldsRecursive(tr, expr)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("circuit %d on %0*b: JSL %v, direct %v", trial, inputs, mask, got, want)
			}
		}
	}
}

// collatzLikeMachine halts after incrementing c0 n times and draining it.
func drainMachine(n int) CounterMachine {
	m := CounterMachine{Start: "q0", Final: "qf", Delta: map[string]CounterTransition{}}
	// q0..q{n-1}: increment c0.
	for i := 0; i < n; i++ {
		next := "loop"
		if i+1 < n {
			next = nstate(i + 1)
		}
		m.Delta[nstate(i)] = CounterTransition{Op: OpIncr, Counter: 0, Next: next}
	}
	// loop: if c0 == 0 then qf else decrement.
	m.Delta["loop"] = CounterTransition{Op: OpIfZero, Counter: 0, Next: "qf", Else: "dec"}
	m.Delta["dec"] = CounterTransition{Op: OpDecr, Counter: 0, Next: "loop"}
	return m
}

func nstate(i int) string {
	if i == 0 {
		return "q0"
	}
	return CounterStateName(i)
}

// CounterStateName names intermediate states; exported for the harness.
func CounterStateName(i int) string { return "q" + string(rune('0'+i)) }

// TestP4CounterMachineEncoding is the evaluation-side reproduction of
// Proposition 4: the halting formula holds exactly on encodings of
// accepting runs.
func TestP4CounterMachineEncoding(t *testing.T) {
	m := drainMachine(3)
	states, c0s, c1s, halted := m.Run(100)
	if !halted {
		t.Fatal("drain machine must halt")
	}
	doc := EncodeRun(states, c0s, c1s)
	formula := m.HaltingFormula()
	tr := jsontree.FromValue(doc)
	if !jnl.Holds(tr, formula, tr.Root()) {
		t.Fatalf("halting formula must hold on the accepting run encoding:\n%s", doc.Indent("  "))
	}
	// Corrupt the run: swap a counter value mid-run.
	c0s[2]++
	bad := EncodeRun(states, c0s, c1s)
	btr := jsontree.FromValue(bad)
	if jnl.Holds(btr, formula, btr.Root()) {
		t.Error("halting formula must reject corrupted runs")
	}
	// A run of a non-halting machine (missing final state) is rejected.
	c0s[2]--
	trunc := EncodeRun(states[:len(states)-1], c0s[:len(c0s)-1], c1s[:len(c1s)-1])
	ttr := jsontree.FromValue(trunc)
	if jnl.Holds(ttr, formula, ttr.Root()) {
		t.Error("halting formula must reject truncated runs")
	}
	// The machine that never halts has no accepting run to encode; its
	// formula rejects every candidate chain we build.
	diverge := CounterMachine{Start: "q0", Final: "qf", Delta: map[string]CounterTransition{
		"q0": {Op: OpIncr, Counter: 0, Next: "q0"},
	}}
	dstates, dc0, dc1, halted := diverge.Run(10)
	if halted {
		t.Fatal("diverging machine must not halt")
	}
	dTree := jsontree.FromValue(EncodeRun(dstates, dc0, dc1))
	if jnl.Holds(dTree, diverge.HaltingFormula(), dTree.Root()) {
		t.Error("diverging machine's formula must reject its partial runs")
	}
}
