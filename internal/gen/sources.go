package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Random query-source generators for the differential test harness:
// each returns a source string guaranteed to be accepted by its front
// end's parser (jnl.Parse, jsl.ParseRecursive, jsonpath.Compile,
// mongoq.Parse). Sources probe the keys k0..k{Keys-1}, string leaves
// s0..s{ValueRange-1} and number leaves 0..ValueRange-1 emitted by
// Document, so queries regularly hit the generated trees instead of
// vacuously selecting nothing.
//
// Generating concrete syntax rather than ASTs is deliberate: the
// engine's plan cache is keyed by source text, so these generators
// exercise the full parse → plan → cache → evaluate pipeline, and
// repeated draws of the same source exercise cache hits.

func randKey(r *rand.Rand) string { return fmt.Sprintf("k%d", r.Intn(12)) }
func randStr(r *rand.Rand) string { return fmt.Sprintf("s%d", r.Intn(20)) }
func randNum(r *rand.Rand) uint64 { return uint64(r.Intn(20)) }
func randRegex(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return ".*"
	case 1:
		return "k.*"
	case 2:
		return fmt.Sprintf("k%d|k%d", r.Intn(12), r.Intn(12))
	default:
		return "k(0|1|2|3).*"
	}
}

// randJSONLiteral emits a small JSON constant in the paper's value
// model (naturals, strings, arrays, objects).
func randJSONLiteral(r *rand.Rand, depth int) string {
	if depth == 0 || r.Intn(3) > 0 {
		if r.Intn(2) == 0 {
			return fmt.Sprintf("%d", randNum(r))
		}
		return fmt.Sprintf("%q", randStr(r))
	}
	if r.Intn(2) == 0 {
		n := r.Intn(3)
		elems := make([]string, n)
		for i := range elems {
			elems[i] = randJSONLiteral(r, depth-1)
		}
		return "[" + strings.Join(elems, ",") + "]"
	}
	n := r.Intn(3)
	members := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := randKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, fmt.Sprintf("%q:%s", k, randJSONLiteral(r, depth-1)))
	}
	return "{" + strings.Join(members, ",") + "}"
}

// RandomJNLPathSource emits a binary JNL formula (a path expression) in
// the concrete syntax of jnl.ParseBinary.
func RandomJNLPathSource(r *rand.Rand, depth int) string {
	n := 1 + r.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = randJNLElement(r, depth)
	}
	return strings.Join(parts, " ")
}

func randJNLElement(r *rand.Rand, depth int) string {
	top := 5
	if depth > 0 {
		top = 8
	}
	switch r.Intn(top) {
	case 0:
		return "/" + randKey(r)
	case 1:
		return fmt.Sprintf("/%d", r.Intn(4))
	case 2:
		return fmt.Sprintf("/~%q", randRegex(r))
	case 3:
		if r.Intn(2) == 0 {
			return fmt.Sprintf("/[%d:%d]", r.Intn(2), 1+r.Intn(4))
		}
		return fmt.Sprintf("/[%d:]", r.Intn(3))
	case 4:
		return "eps"
	case 5:
		return "<" + RandomJNLSource(r, depth-1) + ">"
	case 6:
		// Union of two short paths.
		return "(" + RandomJNLPathSource(r, 0) + " | " + RandomJNLPathSource(r, 0) + ")"
	default:
		// Kleene star over a single axis keeps the product automaton
		// small while still exercising recursion (Proposition 3).
		return "(" + randJNLElement(r, 0) + ")*"
	}
}

// RandomJNLSource emits a unary JNL formula in the concrete syntax of
// jnl.Parse.
func RandomJNLSource(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return "true"
		case 1:
			return "[" + RandomJNLPathSource(r, 0) + "]"
		case 2:
			return fmt.Sprintf("eq(%s, %s)", RandomJNLPathSource(r, 0), randJSONLiteral(r, 1))
		default:
			return fmt.Sprintf("eq(%s, %s)", RandomJNLPathSource(r, 0), RandomJNLPathSource(r, 0))
		}
	}
	switch r.Intn(6) {
	case 0:
		return "!" + RandomJNLSource(r, 0)
	case 1:
		return "(" + RandomJNLSource(r, depth-1) + " && " + RandomJNLSource(r, depth-1) + ")"
	case 2:
		return "(" + RandomJNLSource(r, depth-1) + " || " + RandomJNLSource(r, depth-1) + ")"
	case 3:
		return "[" + RandomJNLPathSource(r, depth) + "]"
	case 4:
		return fmt.Sprintf("eq(%s, %s)", RandomJNLPathSource(r, depth-1), randJSONLiteral(r, 2))
	default:
		return RandomJNLSource(r, 0)
	}
}

// randJSLKeyspec emits a keyspec: a key word, a key regex or an array
// interval.
func randJSLKeyspec(r *rand.Rand) string {
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("%q", randKey(r))
	case 1:
		return fmt.Sprintf("~%q", randRegex(r))
	default:
		if r.Intn(2) == 0 {
			return fmt.Sprintf("[%d:%d]", r.Intn(2), 1+r.Intn(4))
		}
		return fmt.Sprintf("[%d:]", r.Intn(3))
	}
}

// RandomJSLSource emits a plain JSL formula in the concrete syntax of
// jsl.Parse.
func RandomJSLSource(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(10) {
		case 0:
			return "true"
		case 1:
			return "object"
		case 2:
			return "array"
		case 3:
			return "string"
		case 4:
			return "number"
		case 5:
			return "unique"
		case 6:
			return fmt.Sprintf("pattern(%q)", []string{"s.*", "s1|s2", "a.*b"}[r.Intn(3)])
		case 7:
			return fmt.Sprintf("%s(%d)", []string{"min", "max", "multOf", "minch", "maxch"}[r.Intn(5)], 1+r.Intn(6))
		default:
			return fmt.Sprintf("eq(%s)", randJSONLiteral(r, 1))
		}
	}
	switch r.Intn(6) {
	case 0:
		return "!" + RandomJSLSource(r, 0)
	case 1:
		return "(" + RandomJSLSource(r, depth-1) + " && " + RandomJSLSource(r, depth-1) + ")"
	case 2:
		return "(" + RandomJSLSource(r, depth-1) + " || " + RandomJSLSource(r, depth-1) + ")"
	case 3:
		return fmt.Sprintf("some(%s, %s)", randJSLKeyspec(r), RandomJSLSource(r, depth-1))
	case 4:
		return fmt.Sprintf("all(%s, %s)", randJSLKeyspec(r), RandomJSLSource(r, depth-1))
	default:
		return RandomJSLSource(r, 0)
	}
}

// RandomRecursiveJSLSource emits a well-formed recursive JSL expression
// in the concrete syntax of jsl.ParseRecursive: every reference occurs
// guarded under a modality, so the expression passes WellFormed. The
// shapes are parameterized variants of the paper's Example 2 family.
func RandomRecursiveJSLSource(r *rand.Rand, depth int) string {
	inner := RandomJSLSource(r, depth)
	switch r.Intn(3) {
	case 0:
		// Mutual recursion over all edges (even/odd path lengths).
		return fmt.Sprintf(
			"def g1 = all(~\".*\", g2) ; def g2 = (%s && all(~\".*\", g1)) ; g1",
			inner)
	case 1:
		// Single guarded definition with a local condition.
		return fmt.Sprintf(
			"def reach = (%s || some(~%q, reach)) ; reach",
			inner, randRegex(r))
	default:
		// Recursion through array intervals.
		return fmt.Sprintf(
			"def g = (!some([0:], true) || (%s && all([0:], g))) ; g",
			inner)
	}
}

// RandomJSONPathSource emits a JSONPath expression in the syntax of
// jsonpath.Compile.
func RandomJSONPathSource(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteByte('$')
	steps := 1 + r.Intn(3)
	for i := 0; i < steps; i++ {
		switch r.Intn(9) {
		case 0:
			sb.WriteString("." + randKey(r))
		case 1:
			fmt.Fprintf(&sb, "['%s']", randKey(r))
		case 2:
			fmt.Fprintf(&sb, "[%d]", r.Intn(4))
		case 3:
			fmt.Fprintf(&sb, "[%d:%d]", r.Intn(2), 2+r.Intn(3))
		case 4:
			sb.WriteString(".*")
		case 5:
			sb.WriteString("[*]")
		case 6:
			sb.WriteString(".." + randKey(r))
		case 7:
			fmt.Fprintf(&sb, "[?(@.%s)]", randKey(r))
		default:
			op := []string{"==", "!=", ">", ">=", "<", "<="}[r.Intn(6)]
			if op == "==" || op == "!=" {
				if r.Intn(2) == 0 {
					fmt.Fprintf(&sb, "[?(@.%s %s '%s')]", randKey(r), op, randStr(r))
					continue
				}
			}
			fmt.Fprintf(&sb, "[?(@.%s %s %d)]", randKey(r), op, randNum(r))
		}
	}
	return sb.String()
}

// RandomMongoSource emits a MongoDB find filter in the subset supported
// by mongoq.Parse. Paths use dot notation over the generator's key pool
// (numeric segments address array elements).
func RandomMongoSource(r *rand.Rand, depth int) string {
	n := 1 + r.Intn(2)
	members := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k, cond := randMongoCondition(r, depth)
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, fmt.Sprintf("%q:%s", k, cond))
	}
	return "{" + strings.Join(members, ",") + "}"
}

func randMongoPath(r *rand.Rand) string {
	segs := 1 + r.Intn(2)
	parts := make([]string, segs)
	for i := range parts {
		if r.Intn(5) == 0 {
			parts[i] = fmt.Sprintf("%d", r.Intn(3))
		} else {
			parts[i] = randKey(r)
		}
	}
	return strings.Join(parts, ".")
}

func randMongoCondition(r *rand.Rand, depth int) (key, cond string) {
	if depth > 0 && r.Intn(5) == 0 {
		op := []string{"$and", "$or", "$nor"}[r.Intn(3)]
		n := 1 + r.Intn(2)
		subs := make([]string, n)
		for i := range subs {
			subs[i] = RandomMongoSource(r, depth-1)
		}
		return op, "[" + strings.Join(subs, ",") + "]"
	}
	path := randMongoPath(r)
	switch r.Intn(10) {
	case 0:
		return path, fmt.Sprintf("%d", randNum(r))
	case 1:
		return path, fmt.Sprintf("%q", randStr(r))
	case 2:
		op := []string{"$gt", "$gte", "$lt", "$lte"}[r.Intn(4)]
		return path, fmt.Sprintf(`{%q:%d}`, op, randNum(r))
	case 3:
		return path, fmt.Sprintf(`{"$ne":%s}`, randJSONLiteral(r, 1))
	case 4:
		return path, fmt.Sprintf(`{"$eq":%s}`, randJSONLiteral(r, 1))
	case 5:
		elems := make([]string, 1+r.Intn(3))
		for i := range elems {
			elems[i] = randJSONLiteral(r, 0)
		}
		op := []string{"$in", "$nin"}[r.Intn(2)]
		return path, fmt.Sprintf(`{%q:[%s]}`, op, strings.Join(elems, ","))
	case 6:
		return path, fmt.Sprintf(`{"$exists":%d}`, r.Intn(2))
	case 7:
		return path, fmt.Sprintf(`{"$size":%d}`, r.Intn(4))
	case 8:
		kind := []string{"object", "array", "string", "number"}[r.Intn(4)]
		return path, fmt.Sprintf(`{"$type":%q}`, kind)
	default:
		return path, fmt.Sprintf(`{"$not":{"$gte":%d}}`, randNum(r))
	}
}
