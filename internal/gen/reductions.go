package gen

import (
	"fmt"
	"math/rand"

	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
)

// ---- Proposition 2: 3SAT → deterministic JNL ----

// Literal is a 3SAT literal: variable index (1-based) and sign.
type Literal struct {
	Var int
	Neg bool
}

// ThreeSAT is a 3CNF instance.
type ThreeSAT struct {
	Vars    int
	Clauses [][3]Literal
}

// RandomThreeSAT draws a random 3CNF instance with the given
// clause-to-variable ratio (the hardness peak is near ratio 4.3).
func RandomThreeSAT(r *rand.Rand, vars int, clauses int) ThreeSAT {
	inst := ThreeSAT{Vars: vars}
	for c := 0; c < clauses; c++ {
		var cl [3]Literal
		for i := 0; i < 3; i++ {
			cl[i] = Literal{Var: 1 + r.Intn(vars), Neg: r.Intn(2) == 0}
		}
		inst.Clauses = append(inst.Clauses, cl)
	}
	return inst
}

// BruteForceSatisfiable decides the instance by enumeration (reference
// implementation for validating the reduction).
func (t ThreeSAT) BruteForceSatisfiable() bool {
	for mask := 0; mask < 1<<t.Vars; mask++ {
		ok := true
		for _, cl := range t.Clauses {
			sat := false
			for _, lit := range cl {
				val := mask>>(lit.Var-1)&1 == 1
				if val != lit.Neg {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ToJNL builds the Proposition 2 reduction: for each variable p the
// formula θ_p = [X_p⟨[X_0]⟩] ∨ [X_p⟨[X_w]⟩] lets models choose the value
// of p (an array under key p means true, an object with the fresh key w
// means false), and each clause contributes the disjunction of its
// literals' checks. The resulting positive, deterministic JNL formula is
// satisfiable iff the instance is.
func (t ThreeSAT) ToJNL() jnl.Unary {
	const fresh = "w" // the fresh string of the proof
	varKey := func(v int) string { return fmt.Sprintf("p%d", v) }
	trueCheck := func(v int) jnl.Unary {
		return jnl.Exists{Path: jnl.Concat{
			Left:  jnl.KeyAxis{Word: varKey(v)},
			Right: jnl.Test{Inner: jnl.Exists{Path: jnl.IndexAxis{Index: 0}}},
		}}
	}
	falseCheck := func(v int) jnl.Unary {
		return jnl.Exists{Path: jnl.Concat{
			Left:  jnl.KeyAxis{Word: varKey(v)},
			Right: jnl.Test{Inner: jnl.Exists{Path: jnl.KeyAxis{Word: fresh}}},
		}}
	}
	var parts []jnl.Unary
	for v := 1; v <= t.Vars; v++ {
		parts = append(parts, jnl.Or{Left: trueCheck(v), Right: falseCheck(v)})
	}
	for _, cl := range t.Clauses {
		var lits []jnl.Unary
		for _, lit := range cl {
			if lit.Neg {
				lits = append(lits, falseCheck(lit.Var))
			} else {
				lits = append(lits, trueCheck(lit.Var))
			}
		}
		parts = append(parts, jnl.OrAll(lits...))
	}
	return jnl.AndAll(parts...)
}

// ---- Proposition 7: QBF → JSL ----

// QBF is a quantified boolean formula in prenex 3CNF:
// Q1 x1 … Qn xn. clauses.
type QBF struct {
	// Exists[i] reports whether variable i+1 is existentially
	// quantified; otherwise universal.
	Exists  []bool
	Clauses [][3]Literal
}

// RandomQBF draws a random QBF instance.
func RandomQBF(r *rand.Rand, vars, clauses int) QBF {
	q := QBF{Exists: make([]bool, vars)}
	for i := range q.Exists {
		q.Exists[i] = r.Intn(2) == 0
	}
	for c := 0; c < clauses; c++ {
		var cl [3]Literal
		for i := 0; i < 3; i++ {
			cl[i] = Literal{Var: 1 + r.Intn(vars), Neg: r.Intn(2) == 0}
		}
		q.Clauses = append(q.Clauses, cl)
	}
	return q
}

// BruteForceTrue evaluates the QBF by recursive expansion.
func (q QBF) BruteForceTrue() bool {
	assignment := make([]bool, len(q.Exists))
	var eval func(i int) bool
	eval = func(i int) bool {
		if i == len(q.Exists) {
			for _, cl := range q.Clauses {
				sat := false
				for _, lit := range cl {
					if assignment[lit.Var-1] != lit.Neg {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
			return true
		}
		assignment[i] = true
		first := eval(i + 1)
		assignment[i] = false
		second := eval(i + 1)
		if q.Exists[i] {
			return first || second
		}
		return first && second
	}
	return eval(0)
}

// ToJSL builds the Proposition 7 reduction: models are trees of height
// 2n alternating an X edge with a T/F edge per variable — existential
// variables have exactly one of T/F, universal variables both — and for
// each clause C, no root-to-leaf path may encode an assignment
// falsifying C. The formula is satisfiable iff the QBF is true.
func (q QBF) ToJSL() jsl.Formula {
	n := len(q.Exists)
	boxAll := func(f jsl.Formula) jsl.Formula { return jsl.BoxRe(anyKey(), f) }
	boxDepth := func(d int, f jsl.Formula) jsl.Formula {
		for i := 0; i < d; i++ {
			f = boxAll(f)
		}
		return f
	}
	diaT := jsl.DiaWord("T", jsl.True{})
	diaF := jsl.DiaWord("F", jsl.True{})
	var parts []jsl.Formula
	for k := 0; k < n; k++ {
		// Depth 2k: an object with exactly the X child.
		parts = append(parts, boxDepth(2*k, jsl.AndAll(
			jsl.IsObj{},
			jsl.DiaWord("X", jsl.True{}),
			jsl.MaxCh{K: 1},
		)))
		// Depth 2k+1 (under X): T/F children per quantifier.
		var valuation jsl.Formula
		if q.Exists[k] {
			valuation = jsl.Or{
				Left:  jsl.And{Left: diaT, Right: jsl.Not{Inner: diaF}},
				Right: jsl.And{Left: jsl.Not{Inner: diaT}, Right: diaF},
			}
		} else {
			valuation = jsl.And{Left: diaT, Right: diaF}
		}
		parts = append(parts, boxDepth(2*k+1, jsl.AndAll(
			jsl.IsObj{},
			valuation,
			jsl.MaxCh{K: 2},
			jsl.BoxRe(mustRe("[^TF]|..+"), jsl.Not{Inner: jsl.True{}}),
		)))
	}
	// Leaves at depth 2n are empty objects.
	parts = append(parts, boxDepth(2*n, jsl.And{Left: jsl.IsObj{}, Right: jsl.MaxCh{K: 0}}))

	// No falsifying path: for each clause, the path that picks the
	// falsifying side of each clause variable must not exist.
	for _, cl := range q.Clauses {
		falsify := map[int]string{}
		tautology := false
		for _, lit := range cl {
			// A literal fails when its variable takes the opposite value.
			side := "F"
			if lit.Neg {
				side = "T"
			}
			if prev, ok := falsify[lit.Var]; ok && prev != side {
				// The clause contains both x and ¬x: it can never be
				// falsified and contributes no constraint.
				tautology = true
				break
			}
			falsify[lit.Var] = side
		}
		if tautology {
			continue
		}
		path := jsl.Formula(jsl.True{})
		for k := n; k >= 1; k-- {
			if side, ok := falsify[k]; ok {
				path = jsl.DiaWord(side, path)
			} else {
				path = jsl.DiaRe(mustRe("T|F"), path)
			}
			path = jsl.DiaWord("X", path)
		}
		parts = append(parts, jsl.Not{Inner: path})
	}
	return jsl.AndAll(parts...)
}

// ---- Proposition 9: boolean circuits → recursive JSL ----

// GateKind is the operation of a circuit gate.
type GateKind uint8

// Gate kinds.
const (
	GateInput GateKind = iota
	GateAnd
	GateOr
	GateNot
)

// Gate is one gate of a boolean circuit; inputs reference either
// circuit inputs (for GateInput) or earlier gates.
type Gate struct {
	Kind GateKind
	// Input is the input index for GateInput.
	Input int
	// Args are gate indices for AND/OR/NOT.
	Args []int
}

// Circuit is a boolean circuit; the last gate is the output.
type Circuit struct {
	NumInputs int
	Gates     []Gate
}

// RandomCircuit draws a random circuit with the given number of inputs
// and internal gates.
func RandomCircuit(r *rand.Rand, inputs, gates int) Circuit {
	c := Circuit{NumInputs: inputs}
	for i := 0; i < inputs; i++ {
		c.Gates = append(c.Gates, Gate{Kind: GateInput, Input: i})
	}
	for g := 0; g < gates; g++ {
		prev := len(c.Gates)
		switch r.Intn(3) {
		case 0:
			c.Gates = append(c.Gates, Gate{Kind: GateAnd, Args: []int{r.Intn(prev), r.Intn(prev)}})
		case 1:
			c.Gates = append(c.Gates, Gate{Kind: GateOr, Args: []int{r.Intn(prev), r.Intn(prev)}})
		default:
			c.Gates = append(c.Gates, Gate{Kind: GateNot, Args: []int{r.Intn(prev)}})
		}
	}
	return c
}

// Eval evaluates the circuit on an assignment (reference).
func (c Circuit) Eval(inputs []bool) bool {
	vals := make([]bool, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Kind {
		case GateInput:
			vals[i] = inputs[g.Input]
		case GateAnd:
			vals[i] = vals[g.Args[0]] && vals[g.Args[1]]
		case GateOr:
			vals[i] = vals[g.Args[0]] || vals[g.Args[1]]
		case GateNot:
			vals[i] = !vals[g.Args[0]]
		}
	}
	return vals[len(vals)-1]
}

// InputDocument encodes an assignment as the object
// {"IN0": "T"/"F", …} of the Proposition 9 reduction.
func (c Circuit) InputDocument(inputs []bool) string {
	doc := "{"
	for i, b := range inputs {
		if i > 0 {
			doc += ","
		}
		v := "F"
		if b {
			v = "T"
		}
		doc += fmt.Sprintf("%q:%q", fmt.Sprintf("IN%d", i), v)
	}
	return doc + "}"
}

// ToRecursiveJSL builds the Proposition 9 lower-bound construction: one
// definition per gate, with input gates reading ◇_{INi} Pattern(T); the
// base expression is the output gate's symbol. The expression holds on
// InputDocument(x) iff the circuit evaluates to true on x.
func (c Circuit) ToRecursiveJSL() *jsl.Recursive {
	name := func(i int) string { return fmt.Sprintf("g%d", i) }
	r := &jsl.Recursive{}
	for i, g := range c.Gates {
		var body jsl.Formula
		switch g.Kind {
		case GateInput:
			body = jsl.DiaWord(fmt.Sprintf("IN%d", g.Input), jsl.Pattern{Re: mustRe("T")})
		case GateAnd:
			body = jsl.And{Left: jsl.Ref{Name: name(g.Args[0])}, Right: jsl.Ref{Name: name(g.Args[1])}}
		case GateOr:
			body = jsl.Or{Left: jsl.Ref{Name: name(g.Args[0])}, Right: jsl.Ref{Name: name(g.Args[1])}}
		case GateNot:
			body = jsl.Not{Inner: jsl.Ref{Name: name(g.Args[0])}}
		}
		r.Defs = append(r.Defs, jsl.Definition{Name: name(i), Body: body})
	}
	r.Base = jsl.Ref{Name: name(len(c.Gates) - 1)}
	return r
}
