package jsl

import (
	"fmt"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/relang"
)

// Options configure evaluation, mirroring the ablation switches listed
// in DESIGN.md. The zero value is the default (fast) configuration.
type Options struct {
	// NaiveUnique forces the quadratic pairwise uniqueItems check that
	// the O(|J|²·|φ|) bound of Proposition 6 assumes, instead of the
	// hash-bucketed check.
	NaiveUnique bool
}

// Evaluator evaluates (recursive) JSL expressions over one JSON tree.
type Evaluator struct {
	tree *jsontree.Tree
	opts Options

	regexMemo  map[*relang.Regex]map[string]bool
	uniqueMemo map[jsontree.NodeID]bool
}

// NewEvaluator returns an Evaluator for the tree.
func NewEvaluator(t *jsontree.Tree) *Evaluator { return NewEvaluatorOptions(t, Options{}) }

// NewEvaluatorOptions returns an Evaluator with explicit options.
func NewEvaluatorOptions(t *jsontree.Tree, opts Options) *Evaluator {
	return &Evaluator{
		tree:       t,
		opts:       opts,
		regexMemo:  make(map[*relang.Regex]map[string]bool),
		uniqueMemo: make(map[jsontree.NodeID]bool),
	}
}

// Eval computes the set of nodes of the tree satisfying the plain
// (non-recursive) formula f, per the |= relation of §5.2. It runs in
// O(|J|·|φ|) plus the cost of Unique tests (Proposition 6): quadratic
// per array with NaiveUnique, near-linear with hash bucketing.
// f must not contain Ref nodes; use EvalRecursive for those.
func (ev *Evaluator) Eval(f Formula) ([]bool, error) {
	var containsRef bool
	walkRefs(f, func(string) { containsRef = true })
	if containsRef {
		return nil, fmt.Errorf("jsl: formula contains references; use EvalRecursive")
	}
	return ev.evalRecursive(NonRecursive(f))
}

// Holds reports whether the root satisfies f (the J |= ψ convention of
// the paper: schema formulas are evaluated at the root).
func (ev *Evaluator) Holds(f Formula) (bool, error) {
	sets, err := ev.Eval(f)
	if err != nil {
		return false, err
	}
	return sets[ev.tree.Root()], nil
}

// EvalRecursive computes the set of nodes satisfying the recursive
// expression Δ — node n is in the result iff (json(n), n) |= Δ, per
// Lemma 3. The algorithm is the bottom-up stratified evaluation of
// Proposition 9: nodes are processed in increasing height order; at each
// node every subformula of every definition (in precedence-graph
// topological order) and of the base expression is evaluated, with modal
// subformulas consulting the already-complete tables of the strictly
// lower heights. Total work is O(|J|·|Δ|) plus Unique costs.
func (ev *Evaluator) EvalRecursive(r *Recursive) ([]bool, error) {
	if err := r.WellFormed(); err != nil {
		return nil, err
	}
	return ev.evalRecursive(r)
}

// EvalRecursivePrechecked is EvalRecursive without the per-call
// WellFormed re-check, for callers that validated the expression once
// when it was built — the engine's plan layer compiles an expression
// once and then evaluates it per document, where re-deriving the
// precedence graph on every document is pure overhead. Behaviour on an
// expression that was never checked is undefined (evaluation may panic
// on an unguarded cycle).
func (ev *Evaluator) EvalRecursivePrechecked(r *Recursive) ([]bool, error) {
	return ev.evalRecursive(r)
}

// HoldsRecursive reports J |= Δ (satisfaction at the root).
func (ev *Evaluator) HoldsRecursive(r *Recursive) (bool, error) {
	sets, err := ev.EvalRecursive(r)
	if err != nil {
		return false, err
	}
	return sets[ev.tree.Root()], nil
}

// Holds is a convenience: does the root of t satisfy f?
func Holds(t *jsontree.Tree, f Formula) (bool, error) {
	return NewEvaluator(t).Holds(f)
}

// HoldsRecursive is a convenience: does t satisfy Δ?
func HoldsRecursive(t *jsontree.Tree, r *Recursive) (bool, error) {
	return NewEvaluator(t).HoldsRecursive(r)
}

// subformula table construction: every distinct subformula occurrence
// of every definition body and the base gets an id; ids are assigned in
// post-order so children precede parents within one body.
type subTable struct {
	formulas []Formula
	id       map[Formula]int // identity per occurrence via interface key
	defRoot  []int           // root subformula id of each definition
	baseRoot int
	refDef   map[string]int // definition index by name
}

func buildSubTable(r *Recursive) *subTable {
	st := &subTable{id: map[Formula]int{}, refDef: map[string]int{}}
	for i, d := range r.Defs {
		st.refDef[d.Name] = i
	}
	var add func(f Formula) int
	add = func(f Formula) int {
		// Each occurrence is added once; shared sub-values (possible via
		// constructors) are fine to share since truth is positional only
		// in the node, not the occurrence.
		if id, ok := st.id[f]; ok {
			return id
		}
		switch t := f.(type) {
		case Not:
			add(t.Inner)
		case And:
			add(t.Left)
			add(t.Right)
		case Or:
			add(t.Left)
			add(t.Right)
		case DiamondKey:
			add(t.Inner)
		case BoxKey:
			add(t.Inner)
		case DiamondIdx:
			add(t.Inner)
		case BoxIdx:
			add(t.Inner)
		}
		id := len(st.formulas)
		st.formulas = append(st.formulas, f)
		st.id[f] = id
		return id
	}
	st.defRoot = make([]int, len(r.Defs))
	for i, d := range r.Defs {
		st.defRoot[i] = add(d.Body)
	}
	st.baseRoot = add(r.Base)
	return st
}

func (ev *Evaluator) evalRecursive(r *Recursive) ([]bool, error) {
	st := buildSubTable(r)
	t := ev.tree
	n := t.Len()

	// truth[f][node]: whether subformula f holds at node.
	truth := make([][]bool, len(st.formulas))
	for i := range truth {
		truth[i] = make([]bool, n)
	}

	// Bucket nodes by height, ascending.
	maxH := 0
	for i := 0; i < n; i++ {
		if h := t.Height(jsontree.NodeID(i)); h > maxH {
			maxH = h
		}
	}
	byHeight := make([][]jsontree.NodeID, maxH+1)
	for i := 0; i < n; i++ {
		id := jsontree.NodeID(i)
		byHeight[t.Height(id)] = append(byHeight[t.Height(id)], id)
	}

	// Subformula evaluation order per height level: a topological sort
	// over the *within-node* read dependencies. At one node, a
	// connective reads its operands' columns at the same node and a Ref
	// reads its definition root's column at the same node; modal
	// operators read only the children's tables, which the ascending
	// height sweep has already completed. Ordering whole bodies by the
	// definition precedence graph is not enough: a body evaluated early
	// may cache, under a modality, a connective over a Ref to a later
	// definition, and that stale column is what the guarding modality
	// reads from the parent height. Well-formedness (guarded cycles
	// only) makes this dependency graph acyclic.
	evalOrder := st.topoOrder()

	for h := 0; h <= maxH; h++ {
		for _, node := range byHeight[h] {
			for _, fid := range evalOrder {
				truth[fid][node] = ev.evalAt(st, truth, fid, node)
			}
		}
	}

	return truth[st.resolve(st.baseRoot)], nil
}

// topoOrder returns all subformula ids sorted so that every id comes
// after the same-node columns its evaluation reads: connectives after
// their (resolved) operands, Refs after their definition roots. Modal
// operators contribute no same-node edges. The sort is a DFS; a cycle
// would require an unguarded reference cycle, which WellFormed rejects
// before evaluation starts.
func (st *subTable) topoOrder() []int {
	deps := func(fid int) []int {
		switch f := st.formulas[fid].(type) {
		case Not:
			return []int{st.resolve(st.id[f.Inner])}
		case And:
			return []int{st.resolve(st.id[f.Left]), st.resolve(st.id[f.Right])}
		case Or:
			return []int{st.resolve(st.id[f.Left]), st.resolve(st.id[f.Right])}
		case Ref:
			return []int{st.resolve(fid)}
		}
		return nil
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(st.formulas))
	order := make([]int, 0, len(st.formulas))
	var visit func(fid int)
	visit = func(fid int) {
		switch state[fid] {
		case done:
			return
		case visiting:
			panic("jsl: unguarded reference cycle survived WellFormed")
		}
		state[fid] = visiting
		for _, d := range deps(fid) {
			visit(d)
		}
		state[fid] = done
		order = append(order, fid)
	}
	for fid := range st.formulas {
		visit(fid)
	}
	return order
}

// resolve maps a subformula id to the id whose truth column actually
// carries its value: Ref occurrences alias the root subformula of their
// definition. Reads must go through resolve because a guarded Ref's own
// column may be written before its definition at the same node; the
// definition's root column is always written in dependency order.
func (st *subTable) resolve(fid int) int {
	for {
		ref, ok := st.formulas[fid].(Ref)
		if !ok {
			return fid
		}
		fid = st.defRoot[st.refDef[ref.Name]]
	}
}

// evalAt evaluates one subformula at one node, assuming all subformulas
// are already evaluated at every strictly lower node (children) and all
// earlier subformulas of the evaluation order at this node.
func (ev *Evaluator) evalAt(st *subTable, truth [][]bool, fid int, node jsontree.NodeID) bool {
	t := ev.tree
	switch f := st.formulas[fid].(type) {
	case True:
		return true
	case Not:
		return !truth[st.resolve(st.id[f.Inner])][node]
	case And:
		return truth[st.resolve(st.id[f.Left])][node] && truth[st.resolve(st.id[f.Right])][node]
	case Or:
		return truth[st.resolve(st.id[f.Left])][node] || truth[st.resolve(st.id[f.Right])][node]
	case IsArr:
		return t.Kind(node) == jsontree.ArrayNode
	case IsObj:
		return t.Kind(node) == jsontree.ObjectNode
	case IsStr:
		return t.Kind(node) == jsontree.StringNode
	case IsInt:
		return t.Kind(node) == jsontree.NumberNode
	case Pattern:
		return t.Kind(node) == jsontree.StringNode && ev.matchMemo(f.Re, t.StringVal(node))
	case Min:
		return t.Kind(node) == jsontree.NumberNode && t.NumberVal(node) >= f.I
	case Max:
		return t.Kind(node) == jsontree.NumberNode && t.NumberVal(node) <= f.I
	case MultOf:
		if t.Kind(node) != jsontree.NumberNode {
			return false
		}
		if f.I == 0 {
			return t.NumberVal(node) == 0
		}
		return t.NumberVal(node)%f.I == 0
	case MinCh:
		return t.NumChildren(node) >= f.K
	case MaxCh:
		return t.NumChildren(node) <= f.K
	case Unique:
		if t.Kind(node) != jsontree.ArrayNode {
			return false
		}
		return ev.unique(node)
	case EqDoc:
		return t.SubtreeHash(node) == f.Doc.Hash() && t.EqualsValue(node, f.Doc)
	case DiamondKey:
		if t.Kind(node) != jsontree.ObjectNode {
			return false
		}
		inner := truth[st.resolve(st.id[f.Inner])]
		if f.IsWord {
			c := t.ChildByKey(node, f.Word)
			return c != jsontree.InvalidNode && inner[c]
		}
		for _, c := range t.Children(node) {
			if ev.matchMemo(f.Re, t.EdgeKey(c)) && inner[c] {
				return true
			}
		}
		return false
	case BoxKey:
		if t.Kind(node) != jsontree.ObjectNode {
			return true // vacuous: no O-edges
		}
		inner := truth[st.resolve(st.id[f.Inner])]
		if f.IsWord {
			c := t.ChildByKey(node, f.Word)
			return c == jsontree.InvalidNode || inner[c]
		}
		for _, c := range t.Children(node) {
			if ev.matchMemo(f.Re, t.EdgeKey(c)) && !inner[c] {
				return false
			}
		}
		return true
	case DiamondIdx:
		if t.Kind(node) != jsontree.ArrayNode {
			return false
		}
		inner := truth[st.resolve(st.id[f.Inner])]
		for _, c := range t.ChildrenInRange(node, f.Lo, f.Hi) {
			if inner[c] {
				return true
			}
		}
		return false
	case BoxIdx:
		if t.Kind(node) != jsontree.ArrayNode {
			return true
		}
		inner := truth[st.resolve(st.id[f.Inner])]
		for _, c := range t.ChildrenInRange(node, f.Lo, f.Hi) {
			if !inner[c] {
				return false
			}
		}
		return true
	case Ref:
		di, ok := st.refDef[f.Name]
		if !ok {
			panic("jsl: unresolved reference " + f.Name)
		}
		return truth[st.defRoot[di]][node]
	}
	panic(fmt.Sprintf("jsl: unknown formula %T", st.formulas[fid]))
}

func (ev *Evaluator) matchMemo(re *relang.Regex, s string) bool {
	memo, ok := ev.regexMemo[re]
	if !ok {
		memo = make(map[string]bool)
		ev.regexMemo[re] = memo
	}
	m, seen := memo[s]
	if !seen {
		m = re.Match(s)
		memo[s] = m
	}
	return m
}

func (ev *Evaluator) unique(node jsontree.NodeID) bool {
	u, seen := ev.uniqueMemo[node]
	if seen {
		return u
	}
	if ev.opts.NaiveUnique {
		u = ev.tree.UniqueChildrenNaive(node)
	} else {
		u = ev.tree.UniqueChildren(node)
	}
	ev.uniqueMemo[node] = u
	return u
}
