package jsl

// Unfold constructs the formula unfold_J(ψ) of §5.3 for a tree of the
// given height: every reference γ at modal depth ≤ height is replaced by
// its definition body (at the same depth), and every reference that ends
// up under at least height+1 modal operators is replaced by ⊥. The
// expression must be well-formed, otherwise expansion may not terminate;
// callers should check WellFormed first.
//
// Unfold exists as the paper's reference semantics: Lemma 3 states that
// bottom-up evaluation (EvalRecursive) agrees with evaluating the
// unfolded formula, and the tests verify exactly that. The unfolded
// formula can be exponentially larger than Δ — Proposition 9's
// motivation — which BenchmarkP9Unfold measures.
func (r *Recursive) Unfold(height int) Formula {
	return r.unfold(r.Base, 0, height)
}

func (r *Recursive) unfold(f Formula, depth, height int) Formula {
	switch t := f.(type) {
	case Ref:
		if depth > height {
			return False()
		}
		body, ok := r.Def(t.Name)
		if !ok {
			return False()
		}
		return r.unfold(body, depth, height)
	case Not:
		return Not{r.unfold(t.Inner, depth, height)}
	case And:
		return And{r.unfold(t.Left, depth, height), r.unfold(t.Right, depth, height)}
	case Or:
		return Or{r.unfold(t.Left, depth, height), r.unfold(t.Right, depth, height)}
	case DiamondKey:
		return DiamondKey{Re: t.Re, Word: t.Word, IsWord: t.IsWord, Inner: r.unfold(t.Inner, depth+1, height)}
	case BoxKey:
		return BoxKey{Re: t.Re, Word: t.Word, IsWord: t.IsWord, Inner: r.unfold(t.Inner, depth+1, height)}
	case DiamondIdx:
		return DiamondIdx{Lo: t.Lo, Hi: t.Hi, Inner: r.unfold(t.Inner, depth+1, height)}
	case BoxIdx:
		return BoxIdx{Lo: t.Lo, Hi: t.Hi, Inner: r.unfold(t.Inner, depth+1, height)}
	default:
		return f
	}
}
