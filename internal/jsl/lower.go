package jsl

import (
	"jsonlogic/internal/qir"
	"jsonlogic/internal/relang"
)

// Lowering into the unified query algebra (internal/qir): JSL's node
// tests become QIR leaf predicates, its ◇/◻ modalities become
// Exists/ForAll over single-step paths, and recursive definitions
// carry over as named Defs. The bottom-up evaluator in this package
// remains the differential-test oracle; the engine executes lowered
// queries through the shared QIR executor, whose memoized definition
// operators give the same O(|J|·|Δ|) behaviour node-at-a-time.

// Lower translates a formula into a QIR predicate. Ref nodes lower to
// qir.Ref and resolve against the Defs of the enclosing query; use
// Recursive.Lower for complete expressions.
func Lower(f Formula) qir.Node {
	switch t := f.(type) {
	case True:
		return qir.True{}
	case Not:
		return qir.Not{Inner: Lower(t.Inner)}
	case And:
		return qir.And{Left: Lower(t.Left), Right: Lower(t.Right)}
	case Or:
		return qir.Or{Left: Lower(t.Left), Right: Lower(t.Right)}
	case IsObj:
		return qir.KindIs{Kind: qir.KindObject}
	case IsArr:
		return qir.KindIs{Kind: qir.KindArray}
	case IsStr:
		return qir.KindIs{Kind: qir.KindString}
	case IsInt:
		return qir.KindIs{Kind: qir.KindNumber}
	case Unique:
		return qir.Unique{}
	case Pattern:
		return qir.StrMatch{Re: t.Re}
	case Min:
		return qir.NumGE{N: t.I}
	case Max:
		return qir.NumLE{N: t.I}
	case MultOf:
		return qir.NumMultOf{N: t.I}
	case MinCh:
		return qir.ChMin{K: t.K}
	case MaxCh:
		return qir.ChMax{K: t.K}
	case EqDoc:
		return qir.ValEq{Doc: t.Doc}
	case DiamondKey:
		return qir.Exists{Path: keyPath(t.Re, t.Word, t.IsWord), Inner: Lower(t.Inner)}
	case BoxKey:
		return qir.ForAll{Path: keyPath(t.Re, t.Word, t.IsWord), Inner: Lower(t.Inner)}
	case DiamondIdx:
		return qir.Exists{Path: qir.Slice{Lo: t.Lo, Hi: t.Hi}, Inner: Lower(t.Inner)}
	case BoxIdx:
		return qir.ForAll{Path: qir.Slice{Lo: t.Lo, Hi: t.Hi}, Inner: Lower(t.Inner)}
	case Ref:
		return qir.Ref{Name: t.Name}
	}
	panic("jsl: unknown formula")
}

// keyPath maps a key modality's edge selector: ◇_w/◻_w navigate one
// exact key, ◇_e/◻_e any key in L(e).
func keyPath(re *relang.Regex, word string, isWord bool) qir.Path {
	if isWord {
		return qir.Key{Word: word}
	}
	return qir.KeyRe{Re: re}
}

// Lower translates the recursive expression into a complete QIR query
// (definitions plus match predicate).
func (r *Recursive) Lower() *qir.Query {
	q := &qir.Query{Pred: Lower(r.Base)}
	for _, d := range r.Defs {
		q.Defs = append(q.Defs, qir.Def{Name: d.Name, Body: Lower(d.Body)})
	}
	return q
}
