package jsl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

func holds(t *testing.T, doc, formula string) bool {
	t.Helper()
	tr := jsontree.MustParse(doc)
	f, err := Parse(formula)
	if err != nil {
		t.Fatalf("Parse(%q): %v", formula, err)
	}
	got, err := Holds(tr, f)
	if err != nil {
		t.Fatalf("Holds(%q): %v", formula, err)
	}
	return got
}

func TestNodeTests(t *testing.T) {
	tests := []struct {
		doc     string
		formula string
		want    bool
	}{
		{`"abc"`, `string`, true},
		{`"abc"`, `number`, false},
		{`5`, `number`, true},
		{`{}`, `object`, true},
		{`[]`, `array`, true},
		{`[]`, `object`, false},
		{`"0101"`, `pattern("(01)+")`, true},
		{`"011"`, `pattern("(01)+")`, false},
		{`5`, `pattern(".*")`, false}, // Pattern only holds on strings
		{`8`, `min(5)`, true},
		{`5`, `min(5)`, true}, // inclusive per our Theorem 1 convention
		{`4`, `min(5)`, false},
		{`8`, `max(12)`, true},
		{`13`, `max(12)`, false},
		{`12`, `max(12)`, true},
		{`8`, `multOf(4)`, true},
		{`9`, `multOf(4)`, false},
		{`0`, `multOf(4)`, true},
		{`0`, `multOf(0)`, true},
		{`3`, `multOf(0)`, false},
		{`"8"`, `min(5)`, false}, // numeric tests only hold on numbers
		{`{"a":1,"b":2}`, `minch(2)`, true},
		{`{"a":1,"b":2}`, `minch(3)`, false},
		{`{"a":1,"b":2}`, `maxch(2)`, true},
		{`{"a":1,"b":2}`, `maxch(1)`, false},
		{`[1,2,3]`, `minch(3) && maxch(3)`, true},
		{`[1,2,3]`, `unique`, true},
		{`[1,2,1]`, `unique`, false},
		{`[]`, `unique`, true},
		{`{"a":1}`, `unique`, false}, // Unique only holds on arrays
		{`[{"x":1},{"x":2}]`, `unique`, true},
		{`[{"x":1},{"x":1}]`, `unique`, false},
		{`{"a":1}`, `eq({"a":1})`, true},
		{`{"a":1}`, `eq({"a":2})`, false},
		{`32`, `eq(32)`, true},
	}
	for _, tc := range tests {
		if got := holds(t, tc.doc, tc.formula); got != tc.want {
			t.Errorf("%s |= %s: got %v, want %v", tc.doc, tc.formula, got, tc.want)
		}
	}
}

func TestModalities(t *testing.T) {
	doc := `{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}`
	tests := []struct {
		formula string
		want    bool
	}{
		{`some("name", object)`, true},
		{`some("name", string)`, false},
		{`some("age", number && min(18))`, true},
		{`some("missing", true)`, false},
		{`all("age", number)`, true},
		{`all("missing", !true)`, true}, // vacuous
		{`some(~"h.*", array)`, true},
		{`some(~"z.*", true)`, false},
		{`all(~".*", object || number || array)`, true},
		{`all(~"(name|hobbies)", object || array)`, true},
		{`some("hobbies", some([0:], eq("yoga")))`, true},
		{`some("hobbies", some([0:0], eq("yoga")))`, false},
		{`some("hobbies", some([1:1], eq("yoga")))`, true},
		{`some("hobbies", all([0:], string))`, true},
		{`some("hobbies", all([0:], pattern("f.*")))`, false},
		{`some("hobbies", all([5:], string))`, true}, // vacuous range
		{`some("hobbies", some([5:], true))`, false},
		// Modalities over the wrong kind.
		{`some([0:], true)`, false}, // root is an object, not array
		{`all([0:], !true)`, true},  // vacuous on non-arrays
		{`some("name", all(~".*", string))`, true},
	}
	for _, tc := range tests {
		if got := holds(t, doc, tc.formula); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.formula, got, tc.want)
		}
	}
}

// TestEmailSchemaExample reproduces the recursive-schema example of
// §5.3: "not":{"$ref":"#/definitions/email"} where email is a string
// with pattern [A-z]*@ciws.cl.
func TestEmailSchemaExample(t *testing.T) {
	r := MustParseRecursive(`
		def email = string && pattern("[A-z]*@ciws\\.cl") ;
		!email`)
	if err := r.WellFormed(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{
		`"john@ciws.cl"`:   false,
		`"jane@gmail.com"`: true,
		`42`:               true,
		`{"a":1}`:          true,
	}
	for doc, want := range cases {
		tr := jsontree.MustParse(doc)
		got, err := HoldsRecursive(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s |= Δ: got %v, want %v", doc, got, want)
		}
	}
}

// evenPathExpr is Example 2 of the paper: Δ holds on trees where every
// path from root to leaf has even length.
const evenPathExpr = `
	def g1 = all(~".*", g2) ;
	def g2 = some(~".*", true) && all(~".*", g1) ;
	g1`

func TestExample2EvenPaths(t *testing.T) {
	r := MustParseRecursive(evenPathExpr)
	if err := r.WellFormed(); err != nil {
		t.Fatalf("Example 2 must be well-formed: %v", err)
	}
	cases := map[string]bool{
		`{}`:                          true,  // height 0: zero-length paths
		`{"a":{}}`:                    false, // path of length 1
		`{"a":{"b":{}}}`:              true,  // length 2
		`{"a":{"b":{"c":{}}}}`:        false,
		`{"a":{"b":{}},"x":{"y":{}}}`: true,
		`{"a":{"b":{}},"x":{}}`:       false, // one odd path
		`{"a":{"b":{"c":{"d":{}}}}}`:  true,  // length 4
	}
	for doc, want := range cases {
		tr := jsontree.MustParse(doc)
		got, err := HoldsRecursive(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s even-paths: got %v, want %v", doc, got, want)
		}
		// Lemma 3: unfold agrees with bottom-up evaluation.
		unfolded := r.Unfold(tr.Height(tr.Root()))
		ug, err := Holds(tr, unfolded)
		if err != nil {
			t.Fatal(err)
		}
		if ug != got {
			t.Errorf("%s: unfold disagrees with bottom-up (%v vs %v)", doc, ug, got)
		}
	}
}

// TestExample4UnfoldShape checks the unfolding of Example 2 over a tree
// of height 4 per Example 4: symbols are expanded until modal depth
// exceeds the height and the remainder becomes ⊥.
func TestExample4UnfoldShape(t *testing.T) {
	r := MustParseRecursive(evenPathExpr)
	u := r.Unfold(4)
	var refs int
	walkRefs(u, func(string) { refs++ })
	if refs != 0 {
		t.Errorf("unfolded formula still contains %d refs", refs)
	}
	if Size(u) <= Size(r.Base) {
		t.Error("unfold should expand the base expression")
	}
}

// TestExample5CompleteBinaryTrees reproduces Example 5: the recursive
// expression with ¬Unique accepts exactly the JSON documents that are
// complete binary trees with equal siblings (every array node has zero
// or two children, and the two children are equal).
func TestExample5CompleteBinaryTrees(t *testing.T) {
	r := MustParseRecursive(`
		def g = !some([0:], true) || (minch(2) && maxch(2) && !unique && all([0:1], g)) ;
		array && g`)
	if err := r.WellFormed(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{
		`[]`:                true,
		`[[],[]]`:           true,
		`[[[],[]],[[],[]]]`: true,
		`[[]]`:              false, // one child
		`[[],[],[]]`:        false, // three children
		`[[],[[],[]]]`:      false, // children differ (not a complete tree of equal subtrees)
		`5`:                 false,
		`{}`:                false,
	}
	for doc, want := range cases {
		tr := jsontree.MustParse(doc)
		got, err := HoldsRecursive(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s complete-binary: got %v, want %v", doc, got, want)
		}
	}
}

func TestWellFormedness(t *testing.T) {
	// γ1 = ¬γ1 has a self-loop in the precedence graph (Example 3).
	bad := &Recursive{
		Defs: []Definition{{Name: "g1", Body: Not{Ref{"g1"}}}},
		Base: Ref{"g1"},
	}
	if err := bad.WellFormed(); err == nil {
		t.Error("γ1 = ¬γ1 must be ill-formed")
	}
	// Example 2 is well-formed despite the mutual recursion, because
	// every reference is guarded by a modal operator.
	good := MustParseRecursive(evenPathExpr)
	if err := good.WellFormed(); err != nil {
		t.Errorf("Example 2 must be well-formed: %v", err)
	}
	// Undefined reference.
	undef := &Recursive{Base: Ref{"nope"}}
	if err := undef.WellFormed(); err == nil {
		t.Error("undefined reference must be rejected")
	}
	// Duplicate definition.
	dup := &Recursive{
		Defs: []Definition{{Name: "g", Body: True{}}, {Name: "g", Body: True{}}},
		Base: Ref{"g"},
	}
	if err := dup.WellFormed(); err == nil {
		t.Error("duplicate definition must be rejected")
	}
	// Unguarded but acyclic chains are fine.
	chain := MustParseRecursive(`
		def a = number ;
		def b = a || string ;
		b`)
	if err := chain.WellFormed(); err != nil {
		t.Errorf("acyclic unguarded chain must be well-formed: %v", err)
	}
	// Unguarded cycle through two symbols.
	cyc := &Recursive{
		Defs: []Definition{
			{Name: "a", Body: Ref{"b"}},
			{Name: "b", Body: Ref{"a"}},
		},
		Base: Ref{"a"},
	}
	if err := cyc.WellFormed(); err == nil {
		t.Error("unguarded 2-cycle must be ill-formed")
	}
}

func TestEvalRejectsBareRefs(t *testing.T) {
	tr := jsontree.MustParse(`{}`)
	if _, err := NewEvaluator(tr).Eval(Ref{"g"}); err == nil {
		t.Error("Eval must reject formulas with references")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `!`, `(true`, `pattern(`, `pattern("(")`, `min()`, `min(x)`,
		`some(true)`, `some("a" true)`, `some("a", )`, `all([3:1], true)`,
		`all([-1:2], true)`, `eq(nope)`, `true extra`, `some(~"[", true)`,
	}
	for _, f := range bad {
		if _, err := Parse(f); err == nil {
			t.Errorf("Parse(%q): expected error", f)
		}
	}
	badRec := []string{
		`def = true ; true`, `def g true ; g`, `def g = true g`,
	}
	for _, f := range badRec {
		if _, err := ParseRecursive(f); err == nil {
			t.Errorf("ParseRecursive(%q): expected error", f)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	formulas := []string{
		`true`, `string && pattern("ab*")`, `!(number && min(3))`,
		`some("k", all(~".*x", number))`, `some([0:], eq("yoga")) || all([2:5], string)`,
		`minch(1) && maxch(9) && unique`, `multOf(4) || max(10)`,
		`eq({"a":[1,2]})`,
	}
	for _, f := range formulas {
		parsed := MustParse(f)
		rendered := String(parsed)
		again := MustParse(rendered)
		if String(again) != rendered {
			t.Errorf("print-parse-print unstable: %q -> %q -> %q", f, rendered, String(again))
		}
	}
	rec := MustParseRecursive(evenPathExpr)
	again := MustParseRecursive(rec.String())
	if again.String() != rec.String() {
		t.Error("recursive print-parse-print unstable")
	}
}

// refHolds is a direct recursive implementation of the |= relation of
// §5.2 (and the unfold semantics for references), used as a reference
// for differential testing. It is exponential in the worst case.
func refHolds(r *Recursive, t *jsontree.Tree, node jsontree.NodeID, f Formula) bool {
	switch g := f.(type) {
	case True:
		return true
	case Not:
		return !refHolds(r, t, node, g.Inner)
	case And:
		return refHolds(r, t, node, g.Left) && refHolds(r, t, node, g.Right)
	case Or:
		return refHolds(r, t, node, g.Left) || refHolds(r, t, node, g.Right)
	case IsArr:
		return t.Kind(node) == jsontree.ArrayNode
	case IsObj:
		return t.Kind(node) == jsontree.ObjectNode
	case IsStr:
		return t.Kind(node) == jsontree.StringNode
	case IsInt:
		return t.Kind(node) == jsontree.NumberNode
	case Pattern:
		return t.Kind(node) == jsontree.StringNode && g.Re.Match(t.StringVal(node))
	case Min:
		return t.Kind(node) == jsontree.NumberNode && t.NumberVal(node) >= g.I
	case Max:
		return t.Kind(node) == jsontree.NumberNode && t.NumberVal(node) <= g.I
	case MultOf:
		if t.Kind(node) != jsontree.NumberNode {
			return false
		}
		if g.I == 0 {
			return t.NumberVal(node) == 0
		}
		return t.NumberVal(node)%g.I == 0
	case MinCh:
		return t.NumChildren(node) >= g.K
	case MaxCh:
		return t.NumChildren(node) <= g.K
	case Unique:
		return t.Kind(node) == jsontree.ArrayNode && t.UniqueChildrenNaive(node)
	case EqDoc:
		return jsonval.Equal(t.Value(node), g.Doc)
	case DiamondKey:
		if t.Kind(node) != jsontree.ObjectNode {
			return false
		}
		for _, c := range t.Children(node) {
			if g.Re.Match(t.EdgeKey(c)) && refHolds(r, t, c, g.Inner) {
				return true
			}
		}
		return false
	case BoxKey:
		if t.Kind(node) != jsontree.ObjectNode {
			return true
		}
		for _, c := range t.Children(node) {
			if g.Re.Match(t.EdgeKey(c)) && !refHolds(r, t, c, g.Inner) {
				return false
			}
		}
		return true
	case DiamondIdx:
		if t.Kind(node) != jsontree.ArrayNode {
			return false
		}
		for _, c := range t.Children(node) {
			p := t.EdgePos(c)
			if p >= g.Lo && (g.Hi == Inf || p <= g.Hi) && refHolds(r, t, c, g.Inner) {
				return true
			}
		}
		return false
	case BoxIdx:
		if t.Kind(node) != jsontree.ArrayNode {
			return true
		}
		for _, c := range t.Children(node) {
			p := t.EdgePos(c)
			if p >= g.Lo && (g.Hi == Inf || p <= g.Hi) && !refHolds(r, t, c, g.Inner) {
				return false
			}
		}
		return true
	case Ref:
		// Reference semantics via unfolding at the node's subtree height.
		body, ok := r.Def(g.Name)
		if !ok {
			return false
		}
		unfolded := r.unfold(body, 0, t.Height(node))
		return refHolds(r, t, node, unfolded)
	}
	panic("unknown formula")
}

func randDoc(r *rand.Rand, depth int) *jsonval.Value {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return jsonval.Num(uint64(r.Intn(10)))
		}
		return jsonval.Str(strings.Repeat(string(rune('a'+r.Intn(3))), 1+r.Intn(2)))
	}
	n := r.Intn(3) + 1
	if r.Intn(2) == 0 {
		elems := make([]*jsonval.Value, n)
		for i := range elems {
			elems[i] = randDoc(r, depth-1)
		}
		return jsonval.Arr(elems...)
	}
	var members []jsonval.Member
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := string(rune('a' + r.Intn(4)))
		if seen[k] {
			continue
		}
		seen[k] = true
		members = append(members, jsonval.Member{Key: k, Value: randDoc(r, depth-1)})
	}
	return jsonval.MustObj(members...)
}

func randFormula(r *rand.Rand, depth int, refs []string) Formula {
	if depth == 0 {
		switch r.Intn(10) {
		case 0:
			return True{}
		case 1:
			return IsArr{}
		case 2:
			return IsObj{}
		case 3:
			return IsStr{}
		case 4:
			return IsInt{}
		case 5:
			return Min{uint64(r.Intn(8))}
		case 6:
			return MinCh{r.Intn(3)}
		case 7:
			return Unique{}
		case 8:
			if len(refs) > 0 {
				return Ref{refs[r.Intn(len(refs))]}
			}
			return MaxCh{r.Intn(3)}
		default:
			return EqDoc{randDoc(r, 1)}
		}
	}
	switch r.Intn(8) {
	case 0:
		return Not{randFormula(r, depth-1, refs)}
	case 1:
		return And{randFormula(r, depth-1, refs), randFormula(r, depth-1, refs)}
	case 2:
		return Or{randFormula(r, depth-1, refs), randFormula(r, depth-1, refs)}
	case 3:
		return DiamondKey{Re: mustRe(string(rune('a'+r.Intn(3))) + ".*"), Inner: randFormula(r, depth-1, refs)}
	case 4:
		return BoxKey{Re: mustRe("." + "*"), Inner: randFormula(r, depth-1, refs)}
	case 5:
		return DiamondIdx{Lo: 0, Hi: Inf, Inner: randFormula(r, depth-1, refs)}
	case 6:
		return BoxIdx{Lo: r.Intn(2), Hi: r.Intn(2) + 1, Inner: randFormula(r, depth-1, refs)}
	default:
		return randFormula(r, 0, refs)
	}
}

type recCase struct {
	doc *jsonval.Value
	rec *Recursive
}

func (recCase) Generate(r *rand.Rand, size int) reflect.Value {
	doc := randDoc(r, 2+r.Intn(2))
	// Two mutually recursive definitions, guarded (modal depth ≥ 1) to
	// ensure well-formedness, plus a base possibly referring to both.
	g1 := DiamondKey{Re: mustRe(".*"), Inner: randFormula(r, 1, []string{"g1", "g2"})}
	g2 := BoxIdx{Lo: 0, Hi: Inf, Inner: randFormula(r, 1, []string{"g1", "g2"})}
	rec := &Recursive{
		Defs: []Definition{
			{Name: "g1", Body: And{g1, randFormula(r, 1, nil)}},
			{Name: "g2", Body: Or{g2, randFormula(r, 1, nil)}},
		},
		Base: randFormula(r, 2, []string{"g1", "g2"}),
	}
	return reflect.ValueOf(recCase{doc, rec})
}

func mustRe(p string) *relang.Regex { return relang.MustCompile(p) }

// TestStaleRefColumnRegression pins the bug behind the per-subformula
// evaluation order: a connective over a Ref (here !g2) sitting under a
// modality in a body (or the base) evaluated before g2's definition
// used to cache a stale column — the Ref's definition root at the same
// node had not been written yet that pass — and the guarding modality
// then read the stale value from the parent height. The counterexample
// is the smallest shape the quick test used to find intermittently.
func TestStaleRefColumnRegression(t *testing.T) {
	src := `
		def g1 = some(~".*", !g2) && all(~".*", unique) ;
		def g2 = all([0:], min(0)) || some(~"a.*", string) ;
		some(~"c.*", !g2)`
	rec, err := ParseRecursive(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := jsontree.FromValue(jsonval.MustParse(`[{"b":{"c":8}},"a","c"]`))
	sets, err := NewEvaluator(tr).EvalRecursive(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		want := refHolds(rec, tr, n, rec.Base)
		if sets[n] != want {
			t.Errorf("node %d: bottom-up %v, reference %v", n, sets[n], want)
		}
	}
	// The node the original failure reported: {"c":8}. Its only
	// c-matching child is the number 8, where g2 holds vacuously via
	// all([0:], …), so !g2 fails and the base must be false.
	if sets[2] {
		t.Error("stale Ref column resurfaced: base holds at {\"c\":8}")
	}
}

// TestQuickDifferential checks the stratified bottom-up evaluator
// against the direct reference implementation (which realizes reference
// semantics by unfolding) on random documents and random well-formed
// recursive expressions, under both Unique strategies.
func TestQuickDifferential(t *testing.T) {
	f := func(c recCase) bool {
		if err := c.rec.WellFormed(); err != nil {
			t.Logf("generated ill-formed expression: %v", err)
			return false
		}
		tr := jsontree.FromValue(c.doc)
		for _, opts := range []Options{{}, {NaiveUnique: true}} {
			sets, err := NewEvaluatorOptions(tr, opts).EvalRecursive(c.rec)
			if err != nil {
				t.Logf("EvalRecursive: %v", err)
				return false
			}
			for _, n := range tr.Nodes() {
				// Reference semantics is defined on whole documents;
				// per Lemma 3 node n's result matches evaluating Δ on
				// json(n), which refHolds realizes directly.
				want := refHolds(c.rec, tr, n, c.rec.Base)
				if sets[n] != want {
					t.Logf("doc=%s node=%d formula=%s: got %v want %v",
						c.doc, n, c.rec.String(), sets[n], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnfoldAgrees is Lemma 3 as a property: J |= Δ iff
// J |= unfold_J(ψ).
func TestQuickUnfoldAgrees(t *testing.T) {
	f := func(c recCase) bool {
		if c.rec.WellFormed() != nil {
			return false
		}
		tr := jsontree.FromValue(c.doc)
		got, err := HoldsRecursive(tr, c.rec)
		if err != nil {
			return false
		}
		unfolded := c.rec.Unfold(tr.Height(tr.Root()))
		want, err := Holds(tr, unfolded)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
