package jsl

import (
	"testing"

	"jsonlogic/internal/jsontree"
)

func factStrings(facts []jsontree.PathFact) []string {
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.String()
	}
	return out
}

func TestRequiredFacts(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{`some("a", some("b", number))`, []string{"/a", "/a/b", "/a/b kind=number"}},
		{`some("a", eq(5))`, []string{"/a", "/a value=5"}},
		{`some(~"k.*", true)`, []string{"$ kind=object"}},
		{`some([0:], string)`, []string{"$ kind=array", "/0"}},
		{`some([2:2], string)`, []string{"$ kind=array", "/2", "/2 kind=string"}},
		{`(string && pattern("s.*"))`, []string{"$ kind=string", "$ kind=string"}},
		{`all("a", number)`, nil},
		{`!some("a", true)`, nil},
		{`(some("a", true) || some("b", true))`, nil},
		{`(min(3) && max(9))`, []string{"$ kind=number", "$ kind=number"}},
		{`unique`, []string{"$ kind=array"}},
		{`eq({"a":[1,"x"]})`, []string{"$ kind=object", "/a kind=array", "/a/0 value=1", "/a/1 value=\"x\""}},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got := factStrings(RequiredFacts(f))
		if len(got) != len(c.want) {
			t.Errorf("RequiredFacts(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("RequiredFacts(%q)[%d] = %q, want %q", c.src, i, got[i], c.want[i])
			}
		}
	}
}
