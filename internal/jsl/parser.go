package jsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// ParseError reports a malformed JSL expression.
type ParseError struct {
	Input  string
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("jsl: parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a plain JSL formula:
//
//	formula := and ('||' and)*
//	and     := atom ('&&' atom)*
//	atom    := 'true' | '!' atom | '(' formula ')'
//	         | 'object' | 'array' | 'string' | 'number' | 'unique'
//	         | 'pattern(' string ')' | 'min(' int ')' | 'max(' int ')'
//	         | 'multOf(' int ')' | 'minch(' int ')' | 'maxch(' int ')'
//	         | 'eq(' JSON ')'
//	         | ('some'|'all') '(' keyspec ',' formula ')'
//	         | ident                                   -- a reference γ
//	keyspec := string | '~' string | '[' int ':' int? ']'
//
// Examples: string && pattern("[0-9]+"); some("name", string);
// all(~".*", number && min(1)); some([0:], eq("yoga"))
func Parse(input string) (Formula, error) {
	p := &parser{in: input}
	p.skipSpace()
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected trailing input %q", p.in[p.pos:])
	}
	return f, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseRecursive parses a recursive JSL expression:
//
//	recursive := ('def' ident '=' formula ';')* formula
//
// Example (the even-path expression of Example 2 of the paper):
//
//	def g1 = all(~".*", g2) ;
//	def g2 = some(~".*", true) && all(~".*", g1) ;
//	g1
func ParseRecursive(input string) (*Recursive, error) {
	p := &parser{in: input}
	r := &Recursive{}
	for {
		p.skipSpace()
		if !p.hasKeyword("def") {
			break
		}
		p.pos += len("def")
		p.skipSpace()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != '=' {
			return nil, p.errf("want '=' after def %s", name)
		}
		p.pos++
		p.skipSpace()
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ';' {
			return nil, p.errf("want ';' after definition of %s", name)
		}
		p.pos++
		r.Defs = append(r.Defs, Definition{Name: name, Body: body})
	}
	base, err := p.formula()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected trailing input %q", p.in[p.pos:])
	}
	r.Base = base
	return r, nil
}

// MustParseRecursive is ParseRecursive but panics on error.
func MustParseRecursive(input string) *Recursive {
	r, err := ParseRecursive(input)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Input: p.in, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) hasKeyword(kw string) bool {
	if !strings.HasPrefix(p.in[p.pos:], kw) {
		return false
	}
	rest := p.in[p.pos+len(kw):]
	if rest == "" {
		return true
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return !isIdentRune(r, false)
}

func isIdentRune(r rune, first bool) bool {
	if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
		return true
	}
	return !first && r >= '0' && r <= '9'
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.in) {
		r, size := utf8.DecodeRuneInString(p.in[p.pos:])
		if isIdentRune(r, p.pos == start) {
			p.pos += size
		} else {
			break
		}
	}
	if p.pos == start {
		return "", p.errf("want an identifier")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) formula() (Formula, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.in[p.pos:], "||") {
			return left, nil
		}
		p.pos += 2
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
}

func (p *parser) andExpr() (Formula, error) {
	left, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.in[p.pos:], "&&") {
			return left, nil
		}
		p.pos += 2
		right, err := p.atom()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
}

var simpleAtoms = map[string]Formula{
	"true":   True{},
	"object": IsObj{},
	"array":  IsArr{},
	"string": IsStr{},
	"number": IsInt{},
	"unique": Unique{},
}

func (p *parser) atom() (Formula, error) {
	p.skipSpace()
	switch {
	case p.peek() == '!':
		p.pos++
		inner, err := p.atom()
		if err != nil {
			return nil, err
		}
		return Not{inner}, nil
	case p.peek() == '(':
		p.pos++
		inner, err := p.formula()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	}
	for kw, f := range simpleAtoms {
		if p.hasKeyword(kw) {
			p.pos += len(kw)
			return f, nil
		}
	}
	switch {
	case p.hasKeyword("pattern"):
		p.pos += len("pattern")
		s, err := p.parenString()
		if err != nil {
			return nil, err
		}
		re, err := relang.Compile(s)
		if err != nil {
			return nil, p.errf("bad pattern: %v", err)
		}
		return Pattern{re}, nil
	case p.hasKeyword("minch"):
		p.pos += len("minch")
		i, err := p.parenInt()
		return MinCh{i}, err
	case p.hasKeyword("maxch"):
		p.pos += len("maxch")
		i, err := p.parenInt()
		return MaxCh{i}, err
	case p.hasKeyword("min"):
		p.pos += len("min")
		i, err := p.parenInt()
		return Min{uint64(i)}, err
	case p.hasKeyword("max"):
		p.pos += len("max")
		i, err := p.parenInt()
		return Max{uint64(i)}, err
	case p.hasKeyword("multOf") || p.hasKeyword("multof"):
		p.pos += len("multOf")
		i, err := p.parenInt()
		return MultOf{uint64(i)}, err
	case p.hasKeyword("eq"):
		p.pos += len("eq")
		p.skipSpace()
		if p.peek() != '(' {
			return nil, p.errf("want '(' after eq")
		}
		p.pos++
		p.skipSpace()
		doc, n, err := jsonval.ParsePrefix(p.in[p.pos:])
		if err != nil {
			return nil, p.errf("bad JSON in eq: %v", err)
		}
		p.pos += n
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("missing ')' after eq")
		}
		p.pos++
		return EqDoc{doc}, nil
	case p.hasKeyword("some"):
		p.pos += len("some")
		return p.modal(true)
	case p.hasKeyword("all"):
		p.pos += len("all")
		return p.modal(false)
	}
	// A bare identifier is a reference γ.
	if isIdentRune(rune(p.peek()), true) {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Ref{name}, nil
	}
	return nil, p.errf("want a formula, got %q", rest(p.in, p.pos))
}

func (p *parser) modal(diamond bool) (Formula, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return nil, p.errf("want '(' after modality")
	}
	p.pos++
	p.skipSpace()
	var (
		re     *relang.Regex
		word   string
		isWord bool
		lo     int
		hi     int
		isIdx  bool
	)
	switch {
	case p.peek() == '"':
		w, err := p.quoted()
		if err != nil {
			return nil, err
		}
		re = relang.Literal(w)
		word, isWord = w, true
	case p.peek() == '~':
		p.pos++
		pat, err := p.quoted()
		if err != nil {
			return nil, err
		}
		var cerr error
		re, cerr = relang.Compile(pat)
		if cerr != nil {
			return nil, p.errf("bad regex in modality: %v", cerr)
		}
	case p.peek() == '[':
		p.pos++
		var err error
		lo, err = p.integer()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ':' {
			return nil, p.errf("want ':' in index modality")
		}
		p.pos++
		p.skipSpace()
		hi = Inf
		if p.peek() != ']' {
			hi, err = p.integer()
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, p.errf("index modality with hi < lo")
			}
		}
		if p.peek() != ']' {
			return nil, p.errf("missing ']' in index modality")
		}
		p.pos++
		if lo < 0 {
			return nil, p.errf("index modality bounds must be non-negative")
		}
		isIdx = true
	default:
		return nil, p.errf("want a key, regex or index range in modality")
	}
	p.skipSpace()
	if p.peek() != ',' {
		return nil, p.errf("want ',' in modality")
	}
	p.pos++
	inner, err := p.formula()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != ')' {
		return nil, p.errf("missing ')' in modality")
	}
	p.pos++
	if isIdx {
		if diamond {
			return DiamondIdx{Lo: lo, Hi: hi, Inner: inner}, nil
		}
		return BoxIdx{Lo: lo, Hi: hi, Inner: inner}, nil
	}
	if diamond {
		return DiamondKey{Re: re, Word: word, IsWord: isWord, Inner: inner}, nil
	}
	return BoxKey{Re: re, Word: word, IsWord: isWord, Inner: inner}, nil
}

func (p *parser) parenString() (string, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return "", p.errf("want '('")
	}
	p.pos++
	p.skipSpace()
	s, err := p.quoted()
	if err != nil {
		return "", err
	}
	p.skipSpace()
	if p.peek() != ')' {
		return "", p.errf("missing ')'")
	}
	p.pos++
	return s, nil
}

func (p *parser) parenInt() (int, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return 0, p.errf("want '('")
	}
	p.pos++
	p.skipSpace()
	i, err := p.integer()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.peek() != ')' {
		return 0, p.errf("missing ')'")
	}
	p.pos++
	return i, nil
}

func (p *parser) quoted() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("want a quoted string")
	}
	v, n, err := jsonval.ParsePrefix(p.in[p.pos:])
	if err != nil || !v.IsString() {
		return "", p.errf("bad string literal")
	}
	p.pos += n
	return v.Str(), nil
}

func (p *parser) integer() (int, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.in[start] == '-') {
		return 0, p.errf("want an integer")
	}
	n, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, p.errf("integer out of range")
	}
	return n, nil
}

func rest(in string, pos int) string {
	end := pos + 12
	if end > len(in) {
		end = len(in)
	}
	return in[pos:end]
}
