// Package jsl implements the JSON Schema Logic of §5.2 of the paper: a
// modal logic over JSON trees whose atomic predicates (NodeTests) mirror
// the JSON Schema keywords of Table 1, and whose modalities ◇_e, ◇_{i:j},
// ◻_e, ◻_{i:j} mirror the navigation keywords properties,
// patternProperties, additionalProperties, required, items and
// additionalItems. The package also implements recursive JSL (§5.3):
// definitions γ_i = φ_i with a base expression, the precedence graph and
// well-formedness check, the unfold_J reference semantics, and the
// bottom-up PTIME evaluation algorithm of Proposition 9.
//
// One deliberate deviation from the paper's text: the paper defines
// Min(i)/Max(i) as strict comparisons but translates JSON Schema's
// inclusive "minimum"/"maximum" to them directly; we make Min/Max
// inclusive (≥ / ≤) so that Theorem 1's translation is exact. DESIGN.md
// records this substitution.
package jsl

import (
	"fmt"
	"strconv"
	"strings"

	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
)

// Formula is a JSL formula. Formulas are immutable.
type Formula interface {
	isFormula()
	writeTo(sb *strings.Builder)
}

// Inf is the open upper bound +∞ for index modalities.
const Inf = int(^uint(0) >> 1)

// ---- Boolean structure ----

// True is ⊤.
type True struct{}

// Not is ¬φ.
type Not struct{ Inner Formula }

// And is φ ∧ ψ.
type And struct{ Left, Right Formula }

// Or is φ ∨ ψ.
type Or struct{ Left, Right Formula }

// ---- NodeTests (§5.2) ----

// IsArr tests n ∈ Arr.
type IsArr struct{}

// IsObj tests n ∈ Obj.
type IsObj struct{}

// IsStr tests n ∈ Str.
type IsStr struct{}

// IsInt tests n ∈ Int.
type IsInt struct{}

// Unique tests that n is an array whose children are pairwise distinct
// JSON values (the uniqueItems keyword).
type Unique struct{}

// Pattern tests that val(n) is a string in L(e).
type Pattern struct{ Re *relang.Regex }

// Min tests that val(n) is a number ≥ I.
type Min struct{ I uint64 }

// Max tests that val(n) is a number ≤ I.
type Max struct{ I uint64 }

// MultOf tests that val(n) is a number that is a multiple of I.
type MultOf struct{ I uint64 }

// MinCh tests that n has at least K children (minProperties for
// objects; also meaningful on arrays).
type MinCh struct{ K int }

// MaxCh tests that n has at most K children.
type MaxCh struct{ K int }

// EqDoc is the node test ~(A): json(n) = A.
type EqDoc struct{ Doc *jsonval.Value }

// ---- Modalities ----

// DiamondKey is ◇_e φ: some O-edge with key in L(e) leads to a node
// satisfying φ. Word/IsWord record the deterministic fragment ◇_w.
type DiamondKey struct {
	Re     *relang.Regex
	Word   string // set when IsWord
	IsWord bool
	Inner  Formula
}

// BoxKey is ◻_e φ: every O-edge with key in L(e) leads to a node
// satisfying φ (vacuously true when there are none).
type BoxKey struct {
	Re     *relang.Regex
	Word   string
	IsWord bool
	Inner  Formula
}

// DiamondIdx is ◇_{i:j} φ over A-edges; Hi = Inf means +∞.
type DiamondIdx struct {
	Lo, Hi int
	Inner  Formula
}

// BoxIdx is ◻_{i:j} φ over A-edges.
type BoxIdx struct {
	Lo, Hi int
	Inner  Formula
}

// Ref is an occurrence of a defined symbol γ (recursive JSL, §5.3).
type Ref struct{ Name string }

func (True) isFormula()       {}
func (Not) isFormula()        {}
func (And) isFormula()        {}
func (Or) isFormula()         {}
func (IsArr) isFormula()      {}
func (IsObj) isFormula()      {}
func (IsStr) isFormula()      {}
func (IsInt) isFormula()      {}
func (Unique) isFormula()     {}
func (Pattern) isFormula()    {}
func (Min) isFormula()        {}
func (Max) isFormula()        {}
func (MultOf) isFormula()     {}
func (MinCh) isFormula()      {}
func (MaxCh) isFormula()      {}
func (EqDoc) isFormula()      {}
func (DiamondKey) isFormula() {}
func (BoxKey) isFormula()     {}
func (DiamondIdx) isFormula() {}
func (BoxIdx) isFormula()     {}
func (Ref) isFormula()        {}

// ---- Convenience constructors ----

// False is ¬⊤ (the ⊥ used when unfolding runs out of height).
func False() Formula { return Not{True{}} }

// DiaWord returns ◇_w φ, the deterministic diamond.
func DiaWord(w string, inner Formula) Formula {
	return DiamondKey{Re: relang.Literal(w), Word: w, IsWord: true, Inner: inner}
}

// BoxWord returns ◻_w φ, the deterministic box.
func BoxWord(w string, inner Formula) Formula {
	return BoxKey{Re: relang.Literal(w), Word: w, IsWord: true, Inner: inner}
}

// DiaRe returns ◇_e φ for a compiled regex.
func DiaRe(re *relang.Regex, inner Formula) Formula {
	return DiamondKey{Re: re, Inner: inner}
}

// BoxRe returns ◻_e φ for a compiled regex.
func BoxRe(re *relang.Regex, inner Formula) Formula {
	return BoxKey{Re: re, Inner: inner}
}

// DiaAt returns ◇_{i:i} φ, the deterministic array diamond.
func DiaAt(i int, inner Formula) Formula { return DiamondIdx{Lo: i, Hi: i, Inner: inner} }

// BoxAt returns ◻_{i:i} φ.
func BoxAt(i int, inner Formula) Formula { return BoxIdx{Lo: i, Hi: i, Inner: inner} }

// AndAll conjoins formulas; AndAll() is ⊤.
func AndAll(parts ...Formula) Formula {
	if len(parts) == 0 {
		return True{}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = And{out, p}
	}
	return out
}

// OrAll disjoins formulas; OrAll() is ⊥.
func OrAll(parts ...Formula) Formula {
	if len(parts) == 0 {
		return False()
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Or{out, p}
	}
	return out
}

// ---- Recursive JSL (§5.3) ----

// Definition is one equation γ = φ of a recursive JSL expression.
type Definition struct {
	Name string
	Body Formula
}

// Recursive is a recursive JSL expression: a list of definitions and a
// base expression, per display (1) of §5.3. A Recursive with no
// definitions is an ordinary JSL formula.
type Recursive struct {
	Defs []Definition
	Base Formula
}

// NonRecursive wraps a plain formula as a Recursive with no definitions.
func NonRecursive(f Formula) *Recursive { return &Recursive{Base: f} }

// Def looks up a definition body by name.
func (r *Recursive) Def(name string) (Formula, bool) {
	for _, d := range r.Defs {
		if d.Name == name {
			return d.Body, true
		}
	}
	return nil, false
}

// PrecedenceGraph returns the adjacency list of the precedence graph of
// §5.3: an edge γi → γj when γj occurs in the body of γi outside the
// scope of any modal operator.
func (r *Recursive) PrecedenceGraph() map[string][]string {
	g := make(map[string][]string, len(r.Defs))
	for _, d := range r.Defs {
		seen := map[string]bool{}
		collectUnguardedRefs(d.Body, seen)
		var out []string
		for _, d2 := range r.Defs {
			if seen[d2.Name] {
				out = append(out, d2.Name)
			}
		}
		g[d.Name] = out
	}
	return g
}

// collectUnguardedRefs records refs not under a modal operator.
func collectUnguardedRefs(f Formula, out map[string]bool) {
	switch t := f.(type) {
	case Ref:
		out[t.Name] = true
	case Not:
		collectUnguardedRefs(t.Inner, out)
	case And:
		collectUnguardedRefs(t.Left, out)
		collectUnguardedRefs(t.Right, out)
	case Or:
		collectUnguardedRefs(t.Left, out)
		collectUnguardedRefs(t.Right, out)
		// Modal operators guard their contents: recursion stops here.
	}
}

// WellFormed reports whether the precedence graph is acyclic (the
// well-formedness condition of §5.3) and, if not, returns a cycle
// description. It also verifies every Ref resolves to a definition.
func (r *Recursive) WellFormed() error {
	defined := map[string]bool{}
	for _, d := range r.Defs {
		if defined[d.Name] {
			return fmt.Errorf("jsl: duplicate definition of %s", d.Name)
		}
		defined[d.Name] = true
	}
	var undef error
	check := func(f Formula) {
		walkRefs(f, func(name string) {
			if !defined[name] && undef == nil {
				undef = fmt.Errorf("jsl: reference to undefined symbol %s", name)
			}
		})
	}
	for _, d := range r.Defs {
		check(d.Body)
	}
	check(r.Base)
	if undef != nil {
		return undef
	}
	g := r.PrecedenceGraph()
	// DFS cycle detection.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case inStack:
			return fmt.Errorf("jsl: precedence graph has a cycle through %s (ill-formed recursion)", n)
		case done:
			return nil
		}
		state[n] = inStack
		for _, m := range g[n] {
			if err := visit(m); err != nil {
				return err
			}
		}
		state[n] = done
		return nil
	}
	for _, d := range r.Defs {
		if err := visit(d.Name); err != nil {
			return err
		}
	}
	return nil
}

// walkRefs calls fn for every Ref in the formula, guarded or not.
func walkRefs(f Formula, fn func(string)) {
	switch t := f.(type) {
	case Ref:
		fn(t.Name)
	case Not:
		walkRefs(t.Inner, fn)
	case And:
		walkRefs(t.Left, fn)
		walkRefs(t.Right, fn)
	case Or:
		walkRefs(t.Left, fn)
		walkRefs(t.Right, fn)
	case DiamondKey:
		walkRefs(t.Inner, fn)
	case BoxKey:
		walkRefs(t.Inner, fn)
	case DiamondIdx:
		walkRefs(t.Inner, fn)
	case BoxIdx:
		walkRefs(t.Inner, fn)
	}
}

// Size returns the number of AST nodes of the formula.
func Size(f Formula) int {
	n := 1
	switch t := f.(type) {
	case Not:
		n += Size(t.Inner)
	case And:
		n += Size(t.Left) + Size(t.Right)
	case Or:
		n += Size(t.Left) + Size(t.Right)
	case DiamondKey:
		n += Size(t.Inner)
	case BoxKey:
		n += Size(t.Inner)
	case DiamondIdx:
		n += Size(t.Inner)
	case BoxIdx:
		n += Size(t.Inner)
	}
	return n
}

// SizeRecursive is the total size of all definitions plus the base.
func (r *Recursive) SizeRecursive() int {
	n := Size(r.Base)
	for _, d := range r.Defs {
		n += Size(d.Body)
	}
	return n
}

// ---- Rendering ----

func (True) writeTo(sb *strings.Builder)  { sb.WriteString("true") }
func (IsArr) writeTo(sb *strings.Builder) { sb.WriteString("array") }
func (IsObj) writeTo(sb *strings.Builder) { sb.WriteString("object") }
func (IsStr) writeTo(sb *strings.Builder) { sb.WriteString("string") }
func (IsInt) writeTo(sb *strings.Builder) { sb.WriteString("number") }
func (Unique) writeTo(sb *strings.Builder) {
	sb.WriteString("unique")
}

func (n Not) writeTo(sb *strings.Builder) {
	sb.WriteByte('!')
	writeAtom(sb, n.Inner)
}

func (a And) writeTo(sb *strings.Builder) {
	writeAtom(sb, a.Left)
	sb.WriteString(" && ")
	writeAtom(sb, a.Right)
}

func (o Or) writeTo(sb *strings.Builder) {
	writeAtom(sb, o.Left)
	sb.WriteString(" || ")
	writeAtom(sb, o.Right)
}

func (p Pattern) writeTo(sb *strings.Builder) {
	fmt.Fprintf(sb, "pattern(%s)", strconv.Quote(p.Re.String()))
}

func (m Min) writeTo(sb *strings.Builder)    { fmt.Fprintf(sb, "min(%d)", m.I) }
func (m Max) writeTo(sb *strings.Builder)    { fmt.Fprintf(sb, "max(%d)", m.I) }
func (m MultOf) writeTo(sb *strings.Builder) { fmt.Fprintf(sb, "multOf(%d)", m.I) }
func (m MinCh) writeTo(sb *strings.Builder)  { fmt.Fprintf(sb, "minch(%d)", m.K) }
func (m MaxCh) writeTo(sb *strings.Builder)  { fmt.Fprintf(sb, "maxch(%d)", m.K) }

func (e EqDoc) writeTo(sb *strings.Builder) {
	sb.WriteString("eq(")
	sb.WriteString(e.Doc.String())
	sb.WriteByte(')')
}

func (d DiamondKey) writeTo(sb *strings.Builder) {
	writeModal(sb, "some", d.Re, d.Word, d.IsWord, -1, -1, d.Inner)
}
func (b BoxKey) writeTo(sb *strings.Builder) {
	writeModal(sb, "all", b.Re, b.Word, b.IsWord, -1, -1, b.Inner)
}
func (d DiamondIdx) writeTo(sb *strings.Builder) {
	writeModal(sb, "some", nil, "", false, d.Lo, d.Hi, d.Inner)
}
func (b BoxIdx) writeTo(sb *strings.Builder) {
	writeModal(sb, "all", nil, "", false, b.Lo, b.Hi, b.Inner)
}

func (r Ref) writeTo(sb *strings.Builder) { sb.WriteString(r.Name) }

func writeModal(sb *strings.Builder, op string, re *relang.Regex, word string, isWord bool, lo, hi int, inner Formula) {
	sb.WriteString(op)
	sb.WriteByte('(')
	switch {
	case re != nil && isWord:
		sb.WriteString(strconv.Quote(word))
	case re != nil:
		sb.WriteByte('~')
		sb.WriteString(strconv.Quote(re.String()))
	default:
		fmt.Fprintf(sb, "[%d:", lo)
		if hi != Inf {
			sb.WriteString(strconv.Itoa(hi))
		}
		sb.WriteByte(']')
	}
	sb.WriteString(", ")
	inner.writeTo(sb)
	sb.WriteByte(')')
}

func writeAtom(sb *strings.Builder, f Formula) {
	switch f.(type) {
	case And, Or:
		sb.WriteByte('(')
		f.writeTo(sb)
		sb.WriteByte(')')
	default:
		f.writeTo(sb)
	}
}

// String renders the formula in the concrete syntax of Parse.
func String(f Formula) string {
	var sb strings.Builder
	f.writeTo(&sb)
	return sb.String()
}

// String renders the recursive expression: definitions then base.
func (r *Recursive) String() string {
	var sb strings.Builder
	for _, d := range r.Defs {
		sb.WriteString("def ")
		sb.WriteString(d.Name)
		sb.WriteString(" = ")
		d.Body.writeTo(&sb)
		sb.WriteString(" ;\n")
	}
	r.Base.writeTo(&sb)
	return sb.String()
}
