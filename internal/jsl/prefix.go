package jsl

import "jsonlogic/internal/jsontree"

// This file implements the index-planner side of JSL: extracting path
// facts that are necessary for a tree's root to satisfy a formula, for
// the store's inverted path index. The extraction mirrors the strict
// kind semantics of the evaluator (eval.go): diamonds fail on the wrong
// node kind, so every ◇ on the spine contributes a fact, while boxes
// are vacuous on absence and contribute nothing. Negation and
// disjunction force no single branch, so extraction stops there —
// conservative by design; the store re-verifies all candidates.

// RequiredFacts returns path facts every tree whose root satisfies the
// formula must obey. An empty result means nothing anchored could be
// extracted and callers must fall back to scanning. Formulas containing
// Ref are handled soundly (the reference contributes no facts), but
// callers typically skip extraction for recursive expressions entirely.
func RequiredFacts(f Formula) []jsontree.PathFact {
	var facts []jsontree.PathFact
	appendFacts(f, nil, &facts)
	return facts
}

// appendFacts accumulates facts for "the node at prefix satisfies f".
// prefix is never mutated; extensions copy.
func appendFacts(f Formula, prefix []jsontree.Step, facts *[]jsontree.PathFact) {
	classFact := func(k jsontree.Kind) {
		*facts = append(*facts, jsontree.PathFact{Steps: prefix, HasClass: true, Class: k})
	}
	switch t := f.(type) {
	case And:
		appendFacts(t.Left, prefix, facts)
		appendFacts(t.Right, prefix, facts)
	case DiamondKey:
		// ◇ requires an object (eval.go returns false otherwise).
		if t.IsWord {
			p := jsontree.ExtendSteps(prefix, jsontree.Key(t.Word))
			*facts = append(*facts, jsontree.PathFact{Steps: p})
			appendFacts(t.Inner, p, facts)
		} else {
			classFact(jsontree.ObjectNode)
		}
	case DiamondIdx:
		classFact(jsontree.ArrayNode)
		lo := t.Lo
		if lo < 0 {
			lo = 0 // the evaluator clamps negative bounds to 0
		}
		p := jsontree.ExtendSteps(prefix, jsontree.Index(lo))
		*facts = append(*facts, jsontree.PathFact{Steps: p})
		if t.Lo == t.Hi && t.Lo >= 0 {
			// A point interval names exactly one child.
			appendFacts(t.Inner, p, facts)
		}
	case IsObj:
		classFact(jsontree.ObjectNode)
	case IsArr:
		classFact(jsontree.ArrayNode)
	case IsStr:
		classFact(jsontree.StringNode)
	case IsInt:
		classFact(jsontree.NumberNode)
	case Pattern:
		classFact(jsontree.StringNode)
	case Min:
		classFact(jsontree.NumberNode)
	case Max:
		classFact(jsontree.NumberNode)
	case MultOf:
		classFact(jsontree.NumberNode)
	case Unique:
		// Unique is false on non-arrays (eval.go).
		classFact(jsontree.ArrayNode)
	case EqDoc:
		*facts = append(*facts, jsontree.ValueFacts(prefix, t.Doc)...)
	}
	// True, MinCh, MaxCh: no kind restriction. Not, Or: no branch is
	// forced. BoxKey, BoxIdx: vacuously true on absence. Ref: the
	// definition body may be recursive; contribute nothing.
}
