// Benchmarks reproducing the complexity results of the paper's
// "evaluation" (Propositions 1–10 and Theorems 1–2). One benchmark
// family per experiment row of DESIGN.md §4; cmd/jsonrepro turns the
// same sweeps into the tables recorded in EXPERIMENTS.md.
//
// The paper states asymptotic bounds rather than wall-clock numbers, so
// each family sweeps the relevant parameter and the *shape* of the
// series (linear vs quadratic vs cubic vs exponential) is the result
// being reproduced.
package jsonlogic

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"jsonlogic/internal/datalog"
	"jsonlogic/internal/engine"
	"jsonlogic/internal/gen"
	"jsonlogic/internal/jauto"
	"jsonlogic/internal/jnl"
	"jsonlogic/internal/jsl"
	"jsonlogic/internal/jsontree"
	"jsonlogic/internal/jsonval"
	"jsonlogic/internal/relang"
	"jsonlogic/internal/schema"
	"jsonlogic/internal/store"
	"jsonlogic/internal/stream"
	"jsonlogic/internal/translate"
	"jsonlogic/internal/xmlenc"
)

// detFormula builds a deterministic JNL formula of roughly the given
// size (number of operators) probing keys the generator uses.
func detFormula(size int) jnl.Unary {
	parts := make([]jnl.Unary, 0, size/4)
	for i := 0; len(parts) < size/4 || i < 1; i++ {
		k1 := fmt.Sprintf("k%d", i%16)
		k2 := fmt.Sprintf("k%d", (i+7)%16)
		parts = append(parts, jnl.Or{
			Left:  jnl.Exists{Path: jnl.Seq(jnl.Key(k1), jnl.Key(k2))},
			Right: jnl.Not{Inner: jnl.Exists{Path: jnl.Seq(jnl.Key(k2), jnl.At(0))}},
		})
	}
	return jnl.AndAll(parts...)
}

var docSizes = []int{1000, 8000, 64000}

// BenchmarkP1EvalDeterministic reproduces Proposition 1: deterministic
// JNL evaluation in O(|J|·|φ|). ns/op should grow linearly in the doc
// axis and in the formula axis.
func BenchmarkP1EvalDeterministic(b *testing.B) {
	for _, n := range docSizes {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		for _, fs := range []int{8, 64} {
			u := detFormula(fs)
			b.Run(fmt.Sprintf("doc=%d/phi=%d", tree.Len(), fs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ev := jnl.NewEvaluator(tree)
					if ev.Eval(u) == nil {
						b.Fatal("nil result")
					}
				}
			})
		}
	}
}

// BenchmarkP1EvalDatalog evaluates the same formulas through the
// monadic-datalog translation the proof of Proposition 1 uses; the
// series must show the same linear shape as the direct evaluator.
func BenchmarkP1EvalDatalog(b *testing.B) {
	for _, n := range docSizes {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		u := detFormula(8)
		prog, err := datalog.FromJNL(u)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("doc=%d/phi=8", tree.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Evaluate(prog, tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2Sat3SAT reproduces Proposition 2: satisfiability of
// deterministic positive JNL is NP-complete. The 3SAT reduction is the
// hardness direction; time grows exponentially with the variable count.
func BenchmarkP2Sat3SAT(b *testing.B) {
	for _, vars := range []int{3, 4, 5} {
		r := rand.New(rand.NewSource(int64(vars)))
		inst := gen.RandomThreeSAT(r, vars, vars+2)
		u := inst.ToJNL()
		b.Run(fmt.Sprintf("vars=%d/clauses=%d", vars, vars+2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := jauto.SatisfiableJNL(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP3EvalNoEQ reproduces the linear half of Proposition 3:
// recursive non-deterministic JNL without EQ(α,β) evaluates in
// O(|J|·|φ|) via the PDL-style model checker.
func BenchmarkP3EvalNoEQ(b *testing.B) {
	// Descendant query: some node reachable over any path satisfies a test.
	u := jnl.Exists{Path: jnl.Seq(
		jnl.Star{Inner: jnl.Rx(".*")},
		jnl.Test{Inner: jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(7)}},
	)}
	for _, n := range docSizes {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		b.Run(fmt.Sprintf("doc=%d", tree.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := jnl.NewEvaluator(tree)
				_ = ev.Eval(u)
			}
		})
	}
}

// BenchmarkP3EvalWithEQ reproduces the cubic half of Proposition 3:
// EQ(α,β) with non-deterministic paths forces the per-node product
// search. The series grows superlinearly in |J|.
func BenchmarkP3EvalWithEQ(b *testing.B) {
	u := jnl.EQPaths{
		Left:  jnl.Seq(jnl.Rx(".*"), jnl.Rx(".*")),
		Right: jnl.Seq(jnl.Rx(".*")),
	}
	for _, n := range []int{300, 3000, 30000} {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		b.Run(fmt.Sprintf("doc=%d", tree.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := jnl.NewEvaluator(tree)
				_ = ev.Eval(u)
			}
		})
	}
}

// BenchmarkP5SatNonRecursive reproduces the PSPACE satisfiability of
// non-deterministic non-recursive JNL without EQ(α,β): the
// regex-universality family from the hardness proof, [X_Σ*] ∧ [X_e].
func BenchmarkP5SatNonRecursive(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		// e = (a|b){k} is universal over words of length k on {a,b}.
		re := "(a|b)"
		expr := re
		for i := 1; i < k; i++ {
			expr += re
		}
		u := jnl.And{
			Left:  jnl.Exists{Path: jnl.Rx(".*")},
			Right: jnl.Not{Inner: jnl.Exists{Path: jnl.Rx(expr)}},
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := jauto.SatisfiableJNL(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP5SatRecursive reproduces the EXPTIME satisfiability of
// recursive non-deterministic JNL without EQ(α,β): reachability of a
// deep obligation through a Kleene star.
func BenchmarkP5SatRecursive(b *testing.B) {
	for _, depth := range []int{2, 4, 8} {
		inner := jnl.Unary(jnl.EQDoc{Path: jnl.Epsilon{}, Doc: jsonval.Num(1)})
		for i := 0; i < depth; i++ {
			inner = jnl.Exists{Path: jnl.Seq(jnl.Key("a"), jnl.Test{Inner: inner})}
		}
		u := jnl.Exists{Path: jnl.Seq(jnl.Star{Inner: jnl.Rx("a|b")}, jnl.Test{Inner: inner})}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := jauto.SatisfiableJNL(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP6EvalNoUnique reproduces the linear half of Proposition 6:
// JSL evaluation without uniqueItems is O(|J|·|φ|).
func BenchmarkP6EvalNoUnique(b *testing.B) {
	f := jsl.AndAll(
		jsl.IsObj{},
		jsl.BoxRe(relang.MustCompile("k.*"), jsl.Or{Left: jsl.IsObj{}, Right: jsl.Or{Left: jsl.IsArr{}, Right: jsl.Or{Left: jsl.IsStr{}, Right: jsl.IsInt{}}}}),
		jsl.MinCh{K: 1},
	)
	for _, n := range docSizes {
		tree := jsontree.FromValue(gen.SizedDocument(1, n))
		b.Run(fmt.Sprintf("doc=%d", tree.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := jsl.NewEvaluator(tree)
				if _, err := ev.Eval(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP6EvalUnique reproduces the quadratic half of Proposition 6:
// uniqueItems with the naive pairwise comparison the bound assumes. The
// hash-bucketed production check is the ablation baseline.
func BenchmarkP6EvalUnique(b *testing.B) {
	f := jsl.And{Left: jsl.IsArr{}, Right: jsl.Unique{}}
	for _, n := range []int{256, 1024, 4096} {
		doc := gen.ArrayDocument(n, n) // all-distinct: worst case for pairwise
		tree := jsontree.FromValue(doc)
		for _, naive := range []bool{true, false} {
			name := fmt.Sprintf("elems=%d/naive=%v", n, naive)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ev := jsl.NewEvaluatorOptions(tree, jsl.Options{NaiveUnique: naive})
					if _, err := ev.Eval(f); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkP7SatQBF reproduces Proposition 7: JSL satisfiability is
// PSPACE-hard via the QBF reduction; time grows exponentially in the
// number of quantified variables.
func BenchmarkP7SatQBF(b *testing.B) {
	for _, vars := range []int{2, 3, 4} {
		r := rand.New(rand.NewSource(int64(vars)))
		q := gen.RandomQBF(r, vars, vars)
		f := q.ToJSL()
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := jauto.SatisfiableJSLFormula(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// evenDepth is the recursive JSL expression of Example 2 (every
// root-to-leaf path has even length).
func evenDepth() *jsl.Recursive {
	any := relang.MustCompile(".*")
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g1", Body: jsl.BoxRe(any, jsl.Ref{Name: "g2"})},
			{Name: "g2", Body: jsl.And{
				Left:  jsl.DiaRe(any, jsl.True{}),
				Right: jsl.BoxRe(any, jsl.Ref{Name: "g1"}),
			}},
		},
		Base: jsl.Ref{Name: "g1"},
	}
}

// BenchmarkP9BottomUp reproduces the PTIME half of Proposition 9:
// bottom-up evaluation of recursive JSL over trees of growing height.
func BenchmarkP9BottomUp(b *testing.B) {
	r := evenDepth()
	for _, h := range []int{64, 256, 1024} {
		tree := jsontree.FromValue(gen.DeepDocument(h))
		b.Run(fmt.Sprintf("height=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := jsl.NewEvaluator(tree)
				if _, err := ev.EvalRecursive(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// doubling is a recursive JSL expression whose definition body
// mentions its symbol twice, so unfold_J grows as 2^height while the
// bottom-up evaluation of Proposition 9 stays linear.
func doubling() *jsl.Recursive {
	next := relang.MustCompile("next")
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g", Body: jsl.Or{
				Left: jsl.Not{Inner: jsl.DiaRe(relang.MustCompile(".*"), jsl.True{})},
				Right: jsl.And{
					Left:  jsl.DiaRe(next, jsl.Ref{Name: "g"}),
					Right: jsl.BoxRe(next, jsl.Ref{Name: "g"}),
				},
			}},
		},
		Base: jsl.Ref{Name: "g"},
	}
}

// BenchmarkP9Unfold is the ablation for Proposition 9: the unfold_J
// reference semantics is exponential in the tree height (the doubling
// family mentions its symbol twice per definition), so only small
// heights are feasible.
func BenchmarkP9Unfold(b *testing.B) {
	r := doubling()
	for _, h := range []int{4, 8, 12} {
		tree := jsontree.FromValue(gen.DeepDocument(h))
		b.Run(fmt.Sprintf("height=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := r.Unfold(h)
				ev := jsl.NewEvaluator(tree)
				if _, err := ev.Eval(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP10Nonemptiness reproduces Proposition 10: non-emptiness of
// J-automata compiled from recursive JSL, with and without Unique (the
// Unique variant pays the extra exponential of child-multiset counting).
func BenchmarkP10Nonemptiness(b *testing.B) {
	families := []struct {
		name string
		expr *jsl.Recursive
	}{
		{"evenDepth", evenDepth()},
		{"completeBinary", completeBinaryTrees()},
	}
	for _, fam := range families {
		b.Run(fam.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := jauto.SatisfiableJSL(fam.expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// completeBinaryTrees is the Example 5 expression: ¬Unique forces both
// children equal, so models are exactly complete binary trees.
func completeBinaryTrees() *jsl.Recursive {
	return &jsl.Recursive{
		Defs: []jsl.Definition{
			{Name: "g", Body: jsl.Or{
				Left: jsl.Not{Inner: jsl.DiamondIdx{Lo: 0, Hi: 0, Inner: jsl.True{}}},
				Right: jsl.AndAll(
					jsl.MinCh{K: 2}, jsl.MaxCh{K: 2},
					jsl.Not{Inner: jsl.Unique{}},
					jsl.BoxIdx{Lo: 0, Hi: 1, Inner: jsl.Ref{Name: "g"}},
				),
			}},
		},
		Base: jsl.Ref{Name: "g"},
	}
}

// BenchmarkT1Validation reproduces Table 1: validating documents against
// a schema exercising every keyword group, both through the direct
// validator and through the Theorem 1 translation to JSL.
func BenchmarkT1Validation(b *testing.B) {
	s := schema.MustParse(table1Schema)
	doc := jsonval.MustParse(table1Doc)
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	r, err := s.ToJSL()
	if err != nil {
		b.Fatal(err)
	}
	tree := jsontree.FromValue(doc)
	b.Run("viaJSL", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := jsl.NewEvaluator(tree)
			if _, err := ev.HoldsRecursive(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const table1Schema = `{
	"type": "object",
	"minProperties": 2,
	"maxProperties": 16,
	"required": ["name", "age"],
	"properties": {
		"name": {"type": "string", "pattern": "[A-Za-z ]+"},
		"age": {"type": "number", "minimum": 0, "maximum": 150},
		"scores": {
			"type": "array",
			"items": [{"type": "number"}, {"type": "number"}],
			"additionalItems": {"type": "number", "multipleOf": 2},
			"uniqueItems": 1
		}
	},
	"patternProperties": {
		"x-.*": {"anyOf": [{"type": "string"}, {"type": "number"}]}
	},
	"additionalProperties": {"not": {"type": "array"}}
}`

const table1Doc = `{
	"name": "Sue Storm",
	"age": 34,
	"scores": [7, 11, 2, 4, 8],
	"x-note": "extension",
	"extra": {"nested": 1}
}`

// BenchmarkT2TranslationBlowup reproduces the Theorem 2 remark: JSL→JNL
// is polynomial while JNL→JSL can be exponential. The custom metric
// outSize/inSize records the blowup of the formula being translated.
func BenchmarkT2TranslationBlowup(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		// (X_a1 | X_b1) ∘ (X_a2 | X_b2) ∘ … chains: each union of paths
		// duplicates the continuation in the translation, so the JSL
		// rendition doubles per composition (the Theorem 2 remark).
		path := jnl.Binary(jnl.Alt{Left: jnl.Key("a0"), Right: jnl.Key("b0")})
		for i := 1; i < k; i++ {
			step := jnl.Alt{Left: jnl.Key(fmt.Sprintf("a%d", i)), Right: jnl.Key(fmt.Sprintf("b%d", i))}
			path = jnl.Concat{Left: path, Right: step}
		}
		u := jnl.Exists{Path: path}
		b.Run(fmt.Sprintf("JNLtoJSL/k=%d", k), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				f, err := translate.JNLToJSL(u)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(jslSize(f)) / float64(jnl.Size(u))
			}
			b.ReportMetric(ratio, "size-ratio")
		})
	}
	for _, k := range []int{8, 32, 128} {
		f := jsl.Formula(jsl.True{})
		for i := 0; i < k; i++ {
			f = jsl.And{Left: jsl.DiaWord(fmt.Sprintf("w%d", i), jsl.True{}), Right: f}
		}
		b.Run(fmt.Sprintf("JSLtoJNL/k=%d", k), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				u, err := translate.JSLToJNL(f)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(jnl.Size(u)) / float64(jslSize(f))
			}
			b.ReportMetric(ratio, "size-ratio")
		})
	}
}

// jslSize counts AST nodes of a JSL formula.
func jslSize(f jsl.Formula) int {
	n := 1
	switch t := f.(type) {
	case jsl.Not:
		n += jslSize(t.Inner)
	case jsl.And:
		n += jslSize(t.Left) + jslSize(t.Right)
	case jsl.Or:
		n += jslSize(t.Left) + jslSize(t.Right)
	case jsl.DiamondKey:
		n += jslSize(t.Inner)
	case jsl.BoxKey:
		n += jslSize(t.Inner)
	case jsl.DiamondIdx:
		n += jslSize(t.Inner)
	case jsl.BoxIdx:
		n += jslSize(t.Inner)
	}
	return n
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationSubtreeEquality compares the hash-class subtree
// equality against the naive recursive comparison inside EQ-heavy
// evaluation.
func BenchmarkAblationSubtreeEquality(b *testing.B) {
	u := jnl.EQPaths{Left: jnl.Key("k1"), Right: jnl.Key("k2")}
	for _, n := range []int{1000, 8000} {
		tree := jsontree.FromValue(gen.SizedDocument(3, n))
		for _, naive := range []bool{false, true} {
			b.Run(fmt.Sprintf("doc=%d/naive=%v", tree.Len(), naive), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ev := jnl.NewEvaluatorOptions(tree, jnl.Options{NaiveEquality: naive})
					_ = ev.Eval(u)
				}
			})
		}
	}
}

// BenchmarkAblationUnique compares hash-bucketed against pairwise
// uniqueItems on arrays with duplicates present (early-exit friendly)
// and absent (worst case).
func BenchmarkAblationUnique(b *testing.B) {
	f := jsl.And{Left: jsl.IsArr{}, Right: jsl.Unique{}}
	for _, dup := range []bool{false, true} {
		n := 2048
		k := n
		if dup {
			k = n / 2
		}
		tree := jsontree.FromValue(gen.ArrayDocument(n, k))
		for _, naive := range []bool{false, true} {
			b.Run(fmt.Sprintf("dups=%v/naive=%v", dup, naive), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ev := jsl.NewEvaluatorOptions(tree, jsl.Options{NaiveUnique: naive})
					if _, err := ev.Eval(f); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationRegexEdges measures the Proposition 3 preprocessing:
// evaluating a regex axis with the per-tree edge marks (cached in the
// evaluator) versus re-matching per evaluation with a cold evaluator.
func BenchmarkAblationRegexEdges(b *testing.B) {
	u := jnl.Exists{Path: jnl.Seq(jnl.Rx("k(1|3|5)"), jnl.Rx(".*"))}
	tree := jsontree.FromValue(gen.SizedDocument(5, 16000))
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := jnl.NewEvaluator(tree)
			_ = ev.Eval(u)
		}
	})
	b.Run("warm", func(b *testing.B) {
		ev := jnl.NewEvaluator(tree)
		for i := 0; i < b.N; i++ {
			_ = ev.Eval(u)
		}
	})
}

// BenchmarkAblationXMLKeyLookup measures the §3.2 modelling argument:
// worst-case key lookup on a wide object in the deterministic JSON
// tree versus the XML-style encoding's child scan.
func BenchmarkAblationXMLKeyLookup(b *testing.B) {
	for _, width := range []int{16, 256, 4096} {
		doc := gen.WideDocument(width)
		tree := jsontree.FromValue(doc)
		enc := xmlenc.Encode(doc)
		probe := fmt.Sprintf("k%06d", width-1)
		b.Run(fmt.Sprintf("tree/width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tree.ChildByKey(tree.Root(), probe) == jsontree.InvalidNode {
					b.Fatal("missing key")
				}
			}
		})
		b.Run(fmt.Sprintf("xmlscan/width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if enc.ChildByKeyScan(probe) == nil {
					b.Fatal("missing key")
				}
			}
		})
	}
}

// --- Engine benchmarks (plan caching and batch parallelism) ---

// BenchmarkEnginePlanCache measures what the plan cache saves: a cache
// hit versus a full parse + translate + normalize per request, for each
// front-end language. The "miss" series is the per-request cost every
// front end paid before the engine layer existed.
func BenchmarkEnginePlanCache(b *testing.B) {
	queries := []struct {
		lang engine.Language
		src  string
	}{
		{engine.LangJNL, `[(/~"k.*")* <eq(/k1, 7)>] && !eq(/k2, "s1")`},
		{engine.LangJSL, `object && some(~"k.*", (number && min(1)) || string)`},
		{engine.LangJSONPath, `$..k1[?(@.k2 >= 3)]`},
		{engine.LangMongoFind, `{"k1": {"$gte": 3}, "$or": [{"k2": "s1"}, {"k3.k4": {"$exists": 1}}]}`},
	}
	for _, q := range queries {
		b.Run(fmt.Sprintf("%s/miss", q.lang), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Compile(q.lang, q.src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/hit", q.lang), func(b *testing.B) {
			e := engine.New(engine.Options{})
			if _, err := e.Compile(q.lang, q.src); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Compile(q.lang, q.src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSemanticCompile measures the semantic pass the engine
// runs on plan-cache misses (Proposition 7 satisfiability, plus the
// containment dedup scan) and pins the hit path with the pass enabled:
// cache hits skip the pass entirely, so the hit series must match the
// semantics-off plan cache at 0 allocs/op.
func BenchmarkEngineSemanticCompile(b *testing.B) {
	families := []struct {
		name string
		lang engine.Language
		a, z string
	}{
		{"sat", engine.LangJSL,
			`object && some(~"k.*", (number && min(1)) || string)`,
			`object && some(~"j.*", (number && max(9)) || string)`},
		{"unsat", engine.LangJNL,
			`([/k0] && !([/k0]))`,
			`([/k1] && !([/k1]))`},
	}
	for _, f := range families {
		b.Run(f.name+"/miss", func(b *testing.B) {
			// A size-1 cache with two alternating sources makes every
			// compile a miss running the full semantic pass.
			e := engine.New(engine.Options{PlanCacheSize: 1, SemanticBudget: 50000})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := f.a
				if i%2 == 1 {
					src = f.z
				}
				if _, err := e.Compile(f.lang, src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(f.name+"/hit", func(b *testing.B) {
			e := engine.New(engine.Options{PlanCacheSize: 64, SemanticBudget: 50000})
			if _, err := e.Compile(f.lang, f.a); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Compile(f.lang, f.a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// engineBatchTrees builds the document corpus shared by the batch
// benchmarks: many mid-size random documents.
func engineBatchTrees(count, size int) []*jsontree.Tree {
	trees := make([]*jsontree.Tree, count)
	for i := range trees {
		trees[i] = jsontree.FromValue(gen.SizedDocument(int64(i+1), size))
	}
	return trees
}

// BenchmarkEngineEvalBatch compares a sequential evaluation loop
// against the engine's worker-pool EvalBatch over the same shared plan.
// On a multi-core host the parallel series divides by the worker count;
// ns/op is per batch.
func BenchmarkEngineEvalBatch(b *testing.B) {
	plan := engine.MustCompile(engine.LangJNL, `[/~"k.*" /~"k.*"] || eq(/k1, 7)`)
	trees := engineBatchTrees(64, 4000)
	seq := engine.New(engine.Options{Workers: 1})
	par := engine.New(engine.Options{}) // GOMAXPROCS workers
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seq.EvalBatch(plan, trees); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel/workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := par.EvalBatch(plan, trees); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineEvalZeroAlloc pins the pooled-executor acceptance
// criterion: with the plan cached and the result buffer reused, a
// steady-state Validate and a predicate-path Eval perform zero
// allocations per evaluated document — the executor's memo tables,
// regex memo and scratch sets all come from the pool on the compiled
// program. (JSONPath-style selection enumerators still allocate
// O(visited) closure cells; see internal/qir's bounded-allocs test.)
func BenchmarkEngineEvalZeroAlloc(b *testing.B) {
	e := engine.New(engine.Options{})
	src := `{"meta.tenant": "t7", "meta.seq": {"$gte": 100}}`
	plan, err := e.Compile(engine.LangMongoFind, src)
	if err != nil {
		b.Fatal(err)
	}
	tree := jsontree.MustParse(`{"meta":{"tenant":"t7","seq":4096},"payload":{"a":[1,2,3],"b":"x"}}`)
	b.Run("validate", func(b *testing.B) {
		if _, err := e.Validate(plan, tree); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := e.Validate(plan, tree)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("eval-append", func(b *testing.B) {
		buf := make([]jsontree.NodeID, 0, tree.Len())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = e.EvalAppend(plan, tree, buf[:0])
			if err != nil || len(buf) != 1 {
				b.Fatalf("selected %d nodes, err %v", len(buf), err)
			}
		}
	})
}

// BenchmarkEngineValidateNDJSON measures the end-to-end NDJSON path —
// tokenize, build trees through the pooled builders, validate — at one
// and at GOMAXPROCS workers. B/op covers parsing and evaluation for the
// whole batch.
func BenchmarkEngineValidateNDJSON(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"value": {"$lte": 4096}, "sensor": {"$type": "string"}}`)
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, `{"sensor":"s%d","value":%d,"status":"ok","seq":%d}`+"\n", i%32, i%4000, i)
	}
	input := sb.String()
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		e := engine.New(engine.Options{Workers: workers})
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				results, err := e.ValidateReader(plan, strings.NewReader(input))
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 2000 {
					b.Fatalf("got %d results", len(results))
				}
			}
		})
	}
}

// BenchmarkStreamValidate measures the §6 streaming validator: a wide
// flat document at three sizes. ns/op grows linearly with size while
// B/op stays width-independent (frames, not nodes, are allocated).
func BenchmarkStreamValidate(b *testing.B) {
	f := jsl.BoxRe(relang.MustCompile(".*"), jsl.IsInt{})
	v, err := stream.NewValidatorFormula(f)
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{1000, 10000, 100000} {
		var sb strings.Builder
		sb.WriteByte('{')
		for i := 0; i < width; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "\"k%d\":%d", i, i)
		}
		sb.WriteByte('}')
		doc := sb.String()
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				ok, err := v.Validate(strings.NewReader(doc))
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// ---- Storage tier (internal/store): indexed queries vs full scans ----

// storeBenchCache holds one populated store per size so the expensive
// build is shared by all store benchmarks of a run.
var storeBenchCache = map[int]*store.Store{}

// storeBenchSizes are the collection sizes the acceptance criterion
// names: the indexed path must beat the scan at the largest size.
var storeBenchSizes = []int{10000, 100000}

// benchStore builds (once per size) a collection of small mixed
// documents: a deterministic "meta" header the queries probe — tenant
// t0..t63 cycling, a sequence number — a random payload subtree, and a
// "rare" marker on every 128th document for the presence-index
// benchmark.
func benchStore(n int) *store.Store {
	if s, ok := storeBenchCache[n]; ok {
		return s
	}
	r := rand.New(rand.NewSource(42))
	s := store.New(store.Options{Shards: 16})
	payload := gen.DocOptions{Fanout: 2, Depth: 2, Keys: 10, ArrayBias: 40, ValueRange: 30}
	for i := 0; i < n; i++ {
		members := []jsonval.Member{
			{Key: "meta", Value: jsonval.MustObj(
				jsonval.Member{Key: "tenant", Value: jsonval.Str(fmt.Sprintf("t%d", i%64))},
				jsonval.Member{Key: "seq", Value: jsonval.Num(uint64(i))},
			)},
			{Key: "payload", Value: gen.Document(r, payload)},
		}
		if i%128 == 0 {
			members = append(members, jsonval.Member{Key: "rare", Value: jsonval.Num(uint64(i))})
		}
		s.PutTree(fmt.Sprintf("doc%07d", i), jsontree.FromValue(jsonval.MustObj(members...)))
	}
	storeBenchCache[n] = s
	return s
}

// BenchmarkStoreFindMongo compares the indexed document-matching path
// (value-term posting intersection → candidate eval) against the full
// scan for a selective mongo filter (1/64 of the collection matches).
// The gap must widen with collection size: the indexed series grows
// with the result set, the scan series with the collection.
func BenchmarkStoreFindMongo(b *testing.B) {
	plan := engine.MustCompile(engine.LangMongoFind, `{"meta.tenant":"t7"}`)
	for _, n := range storeBenchSizes {
		s := benchStore(n)
		want := (n + 56) / 64 // i%64==7 matches: i = 7, 71, …
		b.Run(fmt.Sprintf("indexed/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, _, err := s.Find(plan)
				if err != nil || len(ids) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, want)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, err := s.FindScan(plan)
				if err != nil || len(ids) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(ids), err, want)
				}
			}
		})
	}
}

// BenchmarkStoreSelectJSONPath measures node selection through the
// presence index: $.rare anchors at a key only 1/128 of the documents
// carry, so the posting list is the candidate set.
func BenchmarkStoreSelectJSONPath(b *testing.B) {
	plan := engine.MustCompile(engine.LangJSONPath, `$.rare`)
	for _, n := range storeBenchSizes {
		s := benchStore(n)
		want := (n + 127) / 128
		b.Run(fmt.Sprintf("indexed/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sels, _, err := s.Select(plan)
				if err != nil || len(sels) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(sels), err, want)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/docs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sels, err := s.SelectScan(plan)
				if err != nil || len(sels) != want {
					b.Fatalf("got %d docs (err %v), want %d", len(sels), err, want)
				}
			}
		})
	}
}

// BenchmarkStoreSemanticShortCircuit measures the serving cost of a
// provably-empty query: the compile-time pass already stamped the plan
// unsatisfiable, so Find returns before planning — no posting list, no
// shard fan-out, no per-document eval, at any collection size.
func BenchmarkStoreSemanticShortCircuit(b *testing.B) {
	e := engine.New(engine.Options{PlanCacheSize: 64, SemanticBudget: 50000})
	plan, err := e.Compile(engine.LangMongoFind, `{"$and":[{"k0":{"$gt":5}},{"k0":{"$lt":3}}]}`)
	if err != nil {
		b.Fatal(err)
	}
	s := store.New(store.Options{Shards: 16, Engine: e})
	r := rand.New(rand.NewSource(7))
	opts := gen.DocOptions{Fanout: 2, Depth: 2, Keys: 10, ArrayBias: 40, ValueRange: 30}
	for i := 0; i < 1000; i++ {
		s.PutTree(fmt.Sprintf("doc%04d", i), jsontree.FromValue(gen.Document(r, opts)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, _, err := s.Find(plan)
		if err != nil || len(ids) != 0 {
			b.Fatalf("got %d docs (err %v), want 0", len(ids), err)
		}
	}
}

// ingestCorpus builds the shared 2000-document NDJSON batch the
// ingest benchmarks feed.
func ingestCorpus() string {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, `{"sensor":"s%d","value":%d,"nested":{"a":[%d,"x"]}}`+"\n", i%32, i, i%100)
	}
	return sb.String()
}

// BenchmarkStoreIngestNDJSON measures bulk ingest throughput including
// incremental index maintenance — the in-memory baseline the durable
// variants below are read against.
func BenchmarkStoreIngestNDJSON(b *testing.B) {
	input := ingestCorpus()
	b.ReportAllocs()
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		s := store.New(store.Options{Shards: 16})
		res, err := s.BulkNDJSON(strings.NewReader(input))
		if err != nil || len(res.IDs) != 2000 {
			b.Fatalf("ingested %d (err %v)", len(res.IDs), err)
		}
	}
}

// BenchmarkStoreIngestDurable quantifies the write-ahead-log overhead
// of bulk ingest under each fsync policy. Bulk batches WAL appends and
// forces them durable once per touched shard at the end of the
// stream, so fsync=always pays ~16 fsyncs per 2000-document batch,
// not 2000; fsync=interval and fsync=off defer to the background
// flusher and should sit near the in-memory baseline plus the
// sequential write cost.
func BenchmarkStoreIngestDurable(b *testing.B) {
	input := ingestCorpus()
	for _, policy := range []store.FsyncPolicy{store.FsyncAlways, store.FsyncInterval, store.FsyncOff} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				b.StartTimer()
				s, err := store.Open(store.Options{Shards: 16, DataDir: dir, Fsync: policy, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.BulkNDJSON(strings.NewReader(input))
				if err != nil || len(res.IDs) != 2000 {
					b.Fatalf("ingested %d (err %v)", len(res.IDs), err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorePutDurable is the single-writer worst case: one
// document per acknowledgement, so fsync=always pays one fsync per
// put (nothing to group), while interval and off ride the buffer.
func BenchmarkStorePutDurable(b *testing.B) {
	for _, policy := range []store.FsyncPolicy{store.FsyncAlways, store.FsyncInterval, store.FsyncOff} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			s, err := store.Open(store.Options{Shards: 16, DataDir: b.TempDir(), Fsync: policy, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fmt.Sprintf("doc%07d", i)
				if err := s.Put(id, `{"sensor":"s1","value":42,"nested":{"a":[7,"x"]}}`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreRecover moved to internal/store/recover_bench_test.go,
// where it compares segment-open against snapshot-load and wal-replay
// at 10k and 100k documents (the legacy-layout conversion needs
// package-internal access).
