#!/bin/sh
# docs-check: the documentation half of CI.
#
#  1. The required documents exist.
#  2. Every relative markdown link in every *.md file resolves to a
#     real file or directory (external http(s)/mailto links and pure
#     anchors are skipped; "path#anchor" is checked as "path").
#  3. `go vet ./examples/...` passes, compiling every documented
#     walkthrough — they cannot silently rot. (CI's dedicated Vet step
#     covers the rest of the tree; vetting it twice buys nothing.)
#
# Run from the repository root: scripts/docs-check.sh (or `make docs-check`).
set -u

fail=0

for required in \
    README.md \
    docs/ARCHITECTURE.md \
    docs/QUERY_LANGUAGES.md \
    cmd/jsonstored/README.md \
    examples/storequery/README.md \
    ROADMAP.md PAPER.md; do
    if [ ! -f "$required" ]; then
        echo "docs-check: missing required document: $required"
        fail=1
    fi
done

# PAPERS.md and SNIPPETS.md are generated reference corpora (arxiv
# retrieval output) whose inline asset links never shipped with them;
# they are not this repo's documentation, so they are skipped.
for f in $(find . -name '*.md' -not -path './.git/*' \
    -not -name PAPERS.md -not -name SNIPPETS.md); do
    dir=$(dirname "$f")
    # Markdown link targets: the (...) following ](. One target per
    # line; our docs never use parentheses or spaces inside targets.
    for target in $(grep -o '](\([^) ]*\))' "$f" | sed 's/^](//; s/)$//'); do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "docs-check: $f: broken link: $target"
            fail=1
        fi
    done
done

if ! go vet ./examples/...; then
    echo "docs-check: go vet ./examples/... failed"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "docs-check: OK"
fi
exit "$fail"
