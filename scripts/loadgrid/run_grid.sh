#!/bin/sh
# run_grid.sh — reproducible load grid: build the daemon and the
# generator, start a throwaway durable daemon, sweep the experiments
# manifest (workload x concurrency), and leave one combined CSV table
# plus the per-point JSON summaries in the results directory.
#
# Usage:
#   sh scripts/loadgrid/run_grid.sh [manifest] [results-dir]
#
# Defaults: scripts/loadgrid/experiments.json and a timestamped
# directory under ./loadgrid-results. Daemon knobs come through the
# environment: ADDR (default 127.0.0.1:18080), SHARDS (16), FSYNC
# (interval). The manifest pins everything measurement-side (seed,
# durations, preload), so two runs of this script on the same host
# differ only by server-side noise.
set -eu

manifest="${1:-scripts/loadgrid/experiments.json}"
results="${2:-loadgrid-results/$(date +%Y%m%d-%H%M%S)}"
addr="${ADDR:-127.0.0.1:18080}"
shards="${SHARDS:-16}"
fsync="${FSYNC:-interval}"

[ -f "$manifest" ] || { echo "run_grid: manifest $manifest not found" >&2; exit 1; }
mkdir -p "$results"

echo "run_grid: building binaries" >&2
go build -o "$results/jsonstored" ./cmd/jsonstored
go build -o "$results/jsonload" ./cmd/jsonload

datadir=$(mktemp -d "${TMPDIR:-/tmp}/loadgrid-data.XXXXXX")
"$results/jsonstored" -addr "$addr" -shards "$shards" \
    -data-dir "$datadir" -fsync "$fsync" >"$results/daemon.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null; wait "$daemon" 2>/dev/null || true; rm -rf "$datadir"' EXIT INT TERM

# Readiness: poll /stats until the daemon answers.
i=0
until curl -sf "http://$addr/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "run_grid: daemon did not come up; see $results/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "run_grid: daemon up on $addr ($shards shards, fsync=$fsync)" >&2

# Metrics before and after bracket the sweep, so server-side counters
# (planner decisions, fan-out histogram, WAL syncs) can be diffed
# against what the generator reports.
curl -s "http://$addr/metrics" >"$results/metrics-before.txt"

"$results/jsonload" -target "http://$addr" -grid "$manifest" \
    -csv "$results/results.csv" -json "$results/summaries.json" \
    2>&1 | tee "$results/run.log" >&2

curl -s "http://$addr/metrics" >"$results/metrics-after.txt"

echo "run_grid: done" >&2
echo "run_grid:   table    $results/results.csv" >&2
echo "run_grid:   json     $results/summaries.json" >&2
echo "run_grid:   metrics  $results/metrics-{before,after}.txt" >&2
column -s, -t "$results/results.csv" 2>/dev/null || cat "$results/results.csv"
