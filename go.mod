module jsonlogic

go 1.24
